// Package analysis is a self-contained static-analysis framework for the
// bovet analyzer suite (cmd/bovet). It mirrors the shape of the
// golang.org/x/tools/go/analysis API — Analyzer, Pass, Diagnostic, Fact —
// but is built purely on the standard library's go/ast and go/types,
// because this module deliberately has no third-party dependencies.
//
// The suite mechanically enforces the invariants every result in this
// repo rests on (see DESIGN.md "Static invariants"):
//
//   - nondeterm:     result paths must not consult wall clocks, global
//     randomness, the environment, or unsorted map iteration order —
//     directly, or through a call into another package that does.
//   - statecodec:    every mutable field of a SaveState/RestoreState type
//     must round-trip through its codec methods.
//   - hotalloc:      functions on a //bovet:hotpath must not contain
//     allocation sites, nor call cross-package functions that do.
//   - registryinit:  prefetcher/workload registration happens only from
//     init functions of internal packages, with complete Definitions.
//   - schemalock:    the serialized field-set of every checkpoint payload
//     and wire struct matches the committed schema.lock, and schema
//     changes bump the governing version constant.
//   - sigcomplete:   every outcome-affecting engine.Options field is
//     visible to experiments.OptionsHash and consulted by WarmupSignature.
//   - deadallow:     every //bovet:allow directive suppressed at least one
//     diagnostic this run; stale exceptions are findings themselves.
//
// Justified exceptions are annotated in source with
// "//bovet:allow <analyzer>[,<analyzer>] <reason>"; the reason is
// mandatory (see directives.go). Cross-package reasoning rides the facts
// layer (facts.go): packages are analyzed in dependency order and each
// pass may export facts about its objects that downstream passes import.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
)

// Analyzer describes one static check. Run is invoked once per loaded
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //bovet:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a short description shown by `bovet -help`.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
	// FactTypes lists prototype values (pointer types) of every Fact this
	// analyzer exports or imports. Facts of unlisted types are rejected at
	// export and never decode.
	FactTypes []Fact
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *factStore
	allows *allowSet
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact states fact about obj, which must be declared in the
// package under analysis. Downstream packages that can reference obj
// retrieve it with ImportObjectFact. Objects invisible across package
// boundaries (locals, fields) are silently unkeyable and the fact is
// retained for same-package importers only if keyable.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact on object of another package", p.Analyzer.Name))
	}
	p.checkFactType(f)
	if key := ObjectKey(obj); key != "" {
		p.facts.put(p.Pkg.Path(), key, f)
	}
}

// ImportObjectFact copies the fact of fptr's concrete type previously
// exported about obj into fptr and reports whether one exists. obj may
// belong to any package analyzed earlier in the run (or whose facts were
// supplied by the vet driver), including the current one.
func (p *Pass) ImportObjectFact(obj types.Object, fptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p.checkFactType(fptr)
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	return p.facts.get(obj.Pkg().Path(), key, fptr)
}

// ExportPackageFact states fact about the package under analysis as a
// whole.
func (p *Pass) ExportPackageFact(f Fact) {
	p.checkFactType(f)
	p.facts.put(p.Pkg.Path(), "", f)
}

// ImportPackageFact copies the package-level fact of fptr's concrete type
// exported by pkgPath into fptr and reports whether one exists.
func (p *Pass) ImportPackageFact(pkgPath string, fptr Fact) bool {
	p.checkFactType(fptr)
	return p.facts.get(pkgPath, "", fptr)
}

func (p *Pass) checkFactType(f Fact) {
	for _, proto := range p.Analyzer.FactTypes {
		if fmt.Sprintf("%T", proto) == fmt.Sprintf("%T", f) {
			return
		}
	}
	panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", p.Analyzer.Name, f))
}

// Allowed reports whether a //bovet:allow directive for this pass's
// analyzer covers pos. Analyzers consult it while computing facts, so a
// justified exception stops taint from propagating to callers, not just
// the local diagnostic. A hit counts as using the directive for the
// deadallow inventory.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allows == nil {
		return false
	}
	return p.allows.suppresses(p.Analyzer.Name, p.Fset.Position(pos))
}

// Finding is a resolved diagnostic: an analyzer name plus a concrete file
// position, ready to print or compare.
type Finding struct {
	Analyzer string
	Pkg      string // import path of the package the finding is in
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Posn, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// SrcFiles are the absolute paths of the parsed source files; their
	// content participates in the fact-cache address.
	SrcFiles []string
	// Export is the compiler export data file, when the loader compiled
	// one; its content participates in the fact-cache address.
	Export string
	// Imports lists the package's direct imports (import paths).
	Imports []string
	// DepOnly marks a module dependency loaded solely so its facts are
	// available to the target packages: analyzers run on it to compute
	// facts, but its diagnostics are not reported (it is not part of what
	// the user asked to check; running bovet on it directly reports them).
	DepOnly bool
}

// Runner executes a suite over packages in dependency order, threading
// facts from each package to its importers.
type Runner struct {
	// Suite is the active analyzers, in execution order.
	Suite []*Analyzer
	// Known lists every analyzer name valid in //bovet:allow directives.
	// Defaults to Suite; cmd/bovet passes the full suite here when -analyzers
	// narrows the active set, so a directive naming an unselected analyzer
	// is not misreported as unknown.
	Known []*Analyzer
	// FactDir, when non-empty, is the content-addressed fact cache: one
	// gob blob per dependency package, named by the SHA-256 of its export
	// data, sources, dependency facts and the suite's fact version. A
	// cache hit skips re-running analyzers on that dependency entirely.
	FactDir string

	store     *factStore
	factHash  map[string]string // pkg path -> hex address of its fact blob
	suiteSalt string
}

func (r *Runner) init() {
	if r.store != nil {
		return
	}
	r.store = newFactStore()
	r.factHash = make(map[string]string)
	if r.Known == nil {
		r.Known = r.Suite
	}
	RegisterFactTypes(r.Suite)
	h := sha256.New()
	fmt.Fprintf(h, "bovet facts v%d", factsVersion)
	for _, a := range r.Suite {
		fmt.Fprintf(h, " %s", a.Name)
	}
	r.suiteSalt = hex.EncodeToString(h.Sum(nil))
}

// ImportFacts seeds the store with a package's previously exported fact
// blob — the vet driver path, where the go command supplies dependency
// facts through the .cfg's PackageVetx table.
func (r *Runner) ImportFacts(pkgPath string, blob []byte) error {
	r.init()
	return r.store.decodePackage(pkgPath, blob)
}

// ExportedFacts returns the encoded facts of one analyzed package, for
// the vet driver to store at VetxOutput.
func (r *Runner) ExportedFacts(pkgPath string) ([]byte, error) {
	r.init()
	return r.store.encodePackage(pkgPath)
}

// Run applies the suite to every package — dependencies first, so facts
// flow to importers — and returns the surviving findings of the target
// (non-DepOnly) packages sorted by (package, file, line, column,
// analyzer). //bovet:allow-suppressed diagnostics are dropped; malformed
// or unknown-name directives are themselves reported under the
// pseudo-analyzer "bovet" (a typoed directive must not silently fail to
// suppress); and when the active suite includes deadallow, every allow
// directive that suppressed nothing is reported at its own position.
func (r *Runner) Run(pkgs []*Package) ([]Finding, error) {
	r.init()
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := r.runPackage(pkg)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

func (r *Runner) runPackage(pkg *Package) ([]Finding, error) {
	if pkg.DepOnly {
		if hit, err := r.loadCachedFacts(pkg); err != nil {
			return nil, err
		} else if hit {
			return nil, nil
		}
	}
	allows, bad := parseAllows(pkg.Fset, pkg.Files, r.Known)
	var findings []Finding
	if !pkg.DepOnly {
		findings = append(findings, bad...)
	}
	for _, a := range r.Suite {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     r.store,
			allows:    allows,
		}
		pass.report = func(d Diagnostic) {
			posn := pkg.Fset.Position(d.Pos)
			if allows.suppresses(a.Name, posn) {
				return
			}
			if !pkg.DepOnly {
				findings = append(findings, Finding{Analyzer: a.Name, Pkg: pkg.PkgPath, Posn: posn, Message: d.Message})
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	if !pkg.DepOnly {
		findings = append(findings, deadAllows(pkg, allows, r.Suite)...)
	}
	if err := r.storeFacts(pkg); err != nil {
		return nil, err
	}
	return findings, nil
}

// deadAllows reports every allow directive that suppressed no diagnostic,
// provided the active suite includes the deadallow analyzer and every
// analyzer the directive names actually ran (an allow for an unselected
// analyzer cannot be judged dead this run).
func deadAllows(pkg *Package, allows *allowSet, suite []*Analyzer) []Finding {
	active := make(map[string]bool, len(suite))
	hasDeadallow := false
	for _, a := range suite {
		active[a.Name] = true
		if a.Name == DeadallowName {
			hasDeadallow = true
		}
	}
	if !hasDeadallow {
		return nil
	}
	var out []Finding
	for _, e := range allows.entries {
		if e.used {
			continue
		}
		judgeable := true
		for _, name := range e.names {
			if !active[name] {
				judgeable = false
				break
			}
		}
		if !judgeable {
			continue
		}
		out = append(out, Finding{
			Analyzer: DeadallowName,
			Pkg:      pkg.PkgPath,
			Posn:     pkg.Fset.Position(e.pos),
			Message: fmt.Sprintf("//bovet:allow %s suppressed no diagnostic this run; the exception is stale — remove it or fix the code it used to excuse",
				e.spelling),
		})
	}
	return out
}

// DeadallowName is the deadallow analyzer's registered name; the Run
// machinery keys its special post-pass on it (the check needs the usage
// ledger of every other analyzer, so it cannot be an ordinary per-package
// pass).
const DeadallowName = "deadallow"

// loadCachedFacts serves a dependency's facts from the content-addressed
// cache. A hit requires the address — export data, sources, dependency
// facts, suite version — to match exactly, so facts are recomputed
// whenever anything that could change them does.
func (r *Runner) loadCachedFacts(pkg *Package) (bool, error) {
	if r.FactDir == "" {
		return false, nil
	}
	addr, err := r.factAddress(pkg)
	if err != nil || addr == "" {
		return false, err
	}
	blob, err := os.ReadFile(filepath.Join(r.FactDir, addr+".facts"))
	if err != nil {
		return false, nil // miss
	}
	if err := r.store.decodePackage(pkg.PkgPath, blob); err != nil {
		return false, nil // corrupt entry: recompute
	}
	sum := sha256.Sum256(blob)
	r.factHash[pkg.PkgPath] = hex.EncodeToString(sum[:])
	return true, nil
}

// storeFacts records the package's fact-blob hash for downstream
// addresses and, for module packages with a cache configured, persists
// the blob under its content address.
func (r *Runner) storeFacts(pkg *Package) error {
	blob, err := r.store.encodePackage(pkg.PkgPath)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(blob)
	r.factHash[pkg.PkgPath] = hex.EncodeToString(sum[:])
	if r.FactDir == "" || !ModulePackage(pkg.PkgPath) {
		return nil
	}
	addr, err := r.factAddress(pkg)
	if err != nil || addr == "" {
		return err
	}
	if err := os.MkdirAll(r.FactDir, 0o755); err != nil {
		return nil // cache is best-effort
	}
	tmp := filepath.Join(r.FactDir, addr+".facts.tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return nil
	}
	_ = os.Rename(tmp, filepath.Join(r.FactDir, addr+".facts"))
	return nil
}

// factAddress computes the content address of a package's facts: the
// suite salt, the compiler export data, every source file, and the fact
// hashes of its direct module imports. Returns "" when an input cannot be
// read (the cache is then skipped for this package).
func (r *Runner) factAddress(pkg *Package) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", r.suiteSalt, pkg.PkgPath)
	if pkg.Export != "" {
		b, err := os.ReadFile(pkg.Export)
		if err != nil {
			return "", nil
		}
		h.Write(b)
	}
	for _, src := range pkg.SrcFiles {
		b, err := os.ReadFile(src)
		if err != nil {
			return "", nil
		}
		fmt.Fprintf(h, "src %s %d\n", filepath.Base(src), len(b))
		h.Write(b)
	}
	for _, imp := range pkg.Imports {
		if !ModulePackage(imp) {
			continue
		}
		dep, ok := r.factHash[imp]
		if !ok {
			return "", nil // dep facts unknown: cannot address soundly
		}
		fmt.Fprintf(h, "dep %s %s\n", imp, dep)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Run applies every analyzer to every package with a fresh Runner and no
// fact cache. Packages must be in dependency order when analyzers use
// facts; the loader returns them that way.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return (&Runner{Suite: analyzers}).Run(pkgs)
}

func sortFindings(fs []Finding) {
	// (package, file, line, column, analyzer) order makes output — and the
	// CI `bovet -json` artifact — byte-stable across runs regardless of
	// package load order; the suite practices the determinism it preaches.
	less := func(a, b Finding) bool {
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	}
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// FuncFor returns the *types.Func a call expression statically resolves to,
// or nil for builtins, type conversions, function-typed variables and
// interface-typed callees whose dynamic target is unknown. Shared by the
// analyzers that classify calls (nondeterm, hotalloc, registryinit).
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether a call invokes the named builtin (append, make,
// new, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
