// Package analysis is a self-contained static-analysis framework for the
// bovet analyzer suite (cmd/bovet). It mirrors the shape of the
// golang.org/x/tools/go/analysis API — Analyzer, Pass, Diagnostic — but is
// built purely on the standard library's go/ast and go/types, because this
// module deliberately has no third-party dependencies.
//
// The suite mechanically enforces the three invariants every result in this
// repo rests on (see DESIGN.md "Static invariants"):
//
//   - nondeterm:     result paths must not consult wall clocks, global
//     randomness, the environment, or unsorted map iteration order.
//   - statecodec:    every mutable field of a SaveState/RestoreState type
//     must round-trip through its codec methods.
//   - hotalloc:      functions on a //bovet:hotpath must not contain
//     allocation sites.
//   - registryinit:  prefetcher/workload registration happens only from
//     init functions of internal packages, with complete Definitions.
//
// Justified exceptions are annotated in source with
// "//bovet:allow <analyzer>[,<analyzer>] <reason>"; the reason is
// mandatory (see directives.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run is invoked once per loaded
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //bovet:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a short description shown by `bovet -help`.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: an analyzer name plus a concrete file
// position, ready to print or compare.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Posn, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position: //bovet:allow-suppressed diagnostics are
// dropped, and malformed or unknown-name directives are themselves reported
// under the pseudo-analyzer "bovet" (a typoed directive must not silently
// fail to suppress).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allows, bad := parseAllows(pkg.Fset, pkg.Files, analyzers)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				if allows.suppresses(a.Name, posn) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Posn: posn, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	// Position order makes output byte-stable across runs regardless of
	// package load order; the suite practices the determinism it preaches.
	less := func(a, b Finding) bool {
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	}
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// FuncFor returns the *types.Func a call expression statically resolves to,
// or nil for builtins, type conversions, function-typed variables and
// interface-typed callees whose dynamic target is unknown. Shared by the
// analyzers that classify calls (nondeterm, hotalloc, registryinit).
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether a call invokes the named builtin (append, make,
// new, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
