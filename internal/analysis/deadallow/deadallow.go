// Package deadallow turns the //bovet:allow inventory into a checked
// artifact. An allow directive is a reviewed exception: "this line
// violates analyzer X for this stated reason". When the offending code is
// later fixed or deleted but the directive survives, the exception is
// documentation of a violation that no longer exists — and worse, it is a
// pre-approved mute for the next, unrelated violation that lands on that
// line. deadallow reports every allow directive that suppressed no
// diagnostic (and was never consulted by an analyzer's Allowed query)
// during the run, so the inventory can only shrink to match reality.
//
// The check needs the usage ledger of every other analyzer after they have
// all run, so it cannot be an ordinary per-package pass: the framework
// (analysis.Runner) performs it as a post-pass keyed on this analyzer's
// presence in the active suite. Selecting `-analyzers deadallow` alone is
// meaningful only together with the analyzers whose directives should be
// judged; the Runner therefore only judges a directive when every analyzer
// it names was active this run.
package deadallow

import "bopsim/internal/analysis"

// Analyzer is the deadallow pass. Run is a no-op: the real work happens in
// the framework's post-pass (see analysis.DeadallowName), which has access
// to the cross-analyzer allow-usage ledger a Pass does not.
var Analyzer = &analysis.Analyzer{
	Name: analysis.DeadallowName,
	Doc:  "report //bovet:allow directives that suppressed no diagnostic this run; stale exceptions are findings",
	Run:  func(*analysis.Pass) error { return nil },
}
