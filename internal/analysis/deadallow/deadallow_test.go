package deadallow_test

import (
	"testing"

	"bopsim/internal/analysis"
	"bopsim/internal/analysis/analysistest"
	"bopsim/internal/analysis/deadallow"
	"bopsim/internal/analysis/hotalloc"
	"bopsim/internal/analysis/nondeterm"
)

// TestDeadallow judges the fixture's allow inventory with nondeterm active
// and hotalloc merely known: the consulted directive survives, the stale
// one is a finding, and the hotalloc one cannot be judged this run.
func TestDeadallow(t *testing.T) {
	suite := []*analysis.Analyzer{nondeterm.Analyzer, deadallow.Analyzer}
	known := []*analysis.Analyzer{nondeterm.Analyzer, hotalloc.Analyzer, deadallow.Analyzer}
	analysistest.RunSuite(t, "testdata", suite, known)
}
