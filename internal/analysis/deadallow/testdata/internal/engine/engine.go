// Package engine exercises the three fates of a //bovet:allow directive
// under deadallow: consulted (live), never consulted (dead — the finding is
// reported on the directive itself), and naming an analyzer that is not in
// the active suite (unjudgeable, so silent). The test runs the suite
// [nondeterm, deadallow] with hotalloc merely known.
package engine

import "time"

// Stamp carries a live allow: the directive suppresses a real nondeterm
// finding, so it is used and not dead.
func Stamp() int64 {
	//bovet:allow nondeterm fixture: proves a consulted directive is not reported dead
	return time.Now().Unix()
}

// Pure carries a dead allow: the line below violates nothing, so the
// exception is stale and the finding lands on the directive's own line.
func Pure(a, b int) int {
	//bovet:allow nondeterm fixture: stale, nothing here is ambient // want `//bovet:allow nondeterm suppressed no diagnostic this run`
	return a + b
}

// Unjudged carries an allow for an analyzer that is known but not active
// this run: it cannot be judged dead, so it is silent.
func Unjudged(n int) []int {
	//bovet:allow hotalloc fixture: hotalloc is deliberately not in the active suite
	return make([]int, n)
}
