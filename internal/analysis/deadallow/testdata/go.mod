module bopsim

go 1.22
