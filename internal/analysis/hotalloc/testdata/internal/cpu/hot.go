// Package cpu is a fixture for the hotalloc analyzer: Cycle is a hotpath
// root, step is reachable from it, Cold is not.
package cpu

// Core owns reusable scratch buffers, the sanctioned alternative to
// allocating per call.
type Core struct {
	buf []uint64
	out []uint64
}

// Cycle is a hot root: everything statically reachable from it inside this
// package must be allocation-free.
//
//bovet:hotpath
func (c *Core) Cycle(now uint64) {
	c.step(now)
	sink(c) // pointers are pointer-shaped: no boxing allocation
}

// step is hot by reachability, not by annotation.
func (c *Core) step(now uint64) {
	m := map[uint64]bool{} // want `map literal in hot path allocates`
	_ = m
	s := []uint64{now} // want `slice literal in hot path allocates`
	_ = s
	p := &Core{} // want `&composite literal in hot path heap-allocates`
	_ = p
	t := make([]uint64, 8) // want `make in hot path allocates`
	_ = t
	q := new(Core) // want `new in hot path allocates`
	_ = q
	c.out = append(c.buf, now)        // want `append into a fresh slice in hot path`
	c.buf = append(c.buf[:0], now)    // amortized self-append: allowed
	c.buf = append(c.buf, now)        // growing the same buffer: allowed
	f := func() uint64 { return now } // want `function literal in hot path`
	_ = f()
	sink(now) // want `value boxed into interface`
}

func sink(v any) {}

// Cold is not reachable from any hotpath root: it may allocate freely.
func Cold() []uint64 {
	return make([]uint64, 4)
}

// Allowed documents a justified warmup-only allocation.
//
//bovet:hotpath
func Allowed() *Core {
	//bovet:allow hotalloc fixture: one-time warmup allocation, not steady state
	return &Core{}
}
