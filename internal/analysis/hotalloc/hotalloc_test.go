package hotalloc_test

import (
	"testing"

	"bopsim/internal/analysis/analysistest"
	"bopsim/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer)
}
