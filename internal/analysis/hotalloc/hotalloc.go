// Package hotalloc is the static counterpart of the testing.AllocsPerRun
// guards pinning the PR 6 zero-alloc work: in functions marked
// //bovet:hotpath — and everything statically reachable from them inside
// the same package — it flags allocation sites.
//
// Flagged: map/slice/pointer composite literals, make, new, function
// literals (closure capture), interface boxing of non-pointer-shaped
// concrete values (in call arguments, assignments, conversions and
// returns), and append calls that are not the amortized self-append
// pattern (x = append(x, ...) / x = append(x[:0], ...)), since a fresh
// destination allocates every call while self-append reaches a steady-state
// capacity.
//
// Reachability is intra-package and static: calls through interfaces are
// not followed, so a hot implementation of an interface method (a
// prefetcher's OnAccess, a generator's Next) carries its own
// //bovet:hotpath annotation. Cold paths that genuinely must allocate —
// error construction on a failure branch, a growth path amortized by
// design — carry //bovet:allow hotalloc with the justification.
package hotalloc

import (
	"go/ast"
	"go/types"

	"bopsim/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation sites in functions reachable from a //bovet:hotpath root",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if analysis.HasHotpathDirective(fd) {
				roots = append(roots, fd)
			}
		}
	}

	// Static intra-package reachability from the annotated roots.
	hot := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || hot[fd] {
			return
		}
		hot[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.FuncFor(pass.TypesInfo, call); callee != nil {
				if next, ok := decls[callee]; ok {
					visit(next)
				}
			}
			return true
		})
	}
	for _, fd := range roots {
		visit(fd)
	}

	for fd := range hot {
		checkFunc(pass, fd)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in hot path: closures allocate when they capture")
			return false // its body is not part of the synchronous hot path
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in hot path heap-allocates")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, info.TypeOf(n.Lhs[i]), rhs)
				}
			}
		case *ast.ReturnStmt:
			checkReturn(pass, fd, n)
		}
		return true
	})
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in hot path allocates")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in hot path allocates")
	}
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch {
	case analysis.IsBuiltin(info, call, "make"):
		pass.Reportf(call.Pos(), "make in hot path allocates; preallocate in the constructor and reuse")
		return
	case analysis.IsBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "new in hot path allocates")
		return
	case analysis.IsBuiltin(info, call, "append"):
		checkAppend(pass, fd, call)
		return
	}
	// Interface boxing at the call boundary: a concrete non-pointer-shaped
	// argument passed as an interface parameter allocates.
	sig, ok := typeOfFun(info, call).(*types.Signature)
	if !ok {
		// A type conversion T(x) with T an interface boxes too.
		if len(call.Args) == 1 {
			if t := conversionTarget(info, call); t != nil {
				checkBoxing(pass, t, call.Args[0])
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, pt, arg)
	}
}

func typeOfFun(info *types.Info, call *ast.CallExpr) types.Type {
	if tv, ok := info.Types[call.Fun]; ok && !tv.IsType() {
		return tv.Type
	}
	return nil
}

func conversionTarget(info *types.Info, call *ast.CallExpr) types.Type {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return tv.Type
	}
	return nil
}

// checkAppend allows the amortized receiver-owned scratch pattern —
// x = append(x, ...) or x = append(x[:0], ...) with the destination spelled
// identically — and flags every other append (fresh destination every call).
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if assign, ok := enclosingAssign(fd, call); ok {
		src := call.Args[0]
		if slice, isSlice := ast.Unparen(src).(*ast.SliceExpr); isSlice {
			src = slice.X
		}
		if types.ExprString(ast.Unparen(assign)) == types.ExprString(ast.Unparen(src)) {
			return
		}
	}
	pass.Reportf(call.Pos(), "append into a fresh slice in hot path allocates every call; use the amortized self-append pattern (x = append(x[:0], ...)) on a reused buffer")
}

// enclosingAssign returns the single LHS expression when call is the sole
// RHS of an assignment (x = append(...)).
func enclosingAssign(fd *ast.FuncDecl, call *ast.CallExpr) (ast.Expr, bool) {
	var out ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if a, ok := n.(*ast.AssignStmt); ok && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			if ast.Unparen(a.Rhs[0]) == call {
				out = a.Lhs[0]
				return false
			}
		}
		return true
	})
	return out, out != nil
}

func checkReturn(pass *analysis.Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	results := fd.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // multi-value call forwarding; boxing happened at the callee
	}
	for i, expr := range ret.Results {
		checkBoxing(pass, resultTypes[i], expr)
	}
}

// checkBoxing reports when a concrete non-pointer-shaped value is converted
// to an interface type: the conversion heap-allocates the value's copy.
// Pointer-shaped kinds (pointers, maps, chans, funcs, unsafe.Pointer) store
// directly in the interface word.
func checkBoxing(pass *analysis.Pass, dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if st == types.Typ[types.UntypedNil] {
		return
	}
	switch u := st.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface: no box
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return // pointer-shaped: stored in the interface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Info()&types.IsUntyped != 0 && tv.Value == nil {
			return
		}
	}
	pass.Reportf(src.Pos(), "%s value boxed into interface %s in hot path allocates; pass a pointer or keep the call off the hot path", st, dst)
}
