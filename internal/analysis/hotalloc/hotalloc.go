// Package hotalloc is the static counterpart of the testing.AllocsPerRun
// guards pinning the PR 6 zero-alloc work: in functions marked
// //bovet:hotpath — and everything statically reachable from them — it
// flags allocation sites.
//
// Flagged: map/slice/pointer composite literals, make, new, function
// literals (closure capture), interface boxing of non-pointer-shaped
// concrete values (in call arguments, assignments, conversions and
// returns), and append calls that are not the amortized self-append
// pattern (x = append(x, ...) / x = append(x[:0], ...)), since a fresh
// destination allocates every call while self-append reaches a steady-state
// capacity.
//
// Reachability is static: same-package calls are followed directly, and a
// call into another module package is checked against the callee's
// Allocates fact — every package exports, for each of its functions, the
// allocation sites reachable from it — so a hot loop in uncore calling a
// concrete helper in cache is checked end to end instead of stopping at
// the package edge. Calls through interfaces are still not followed, so a
// hot implementation of an interface method (a prefetcher's OnAccess, a
// generator's Next) carries its own //bovet:hotpath annotation. Cold paths
// that genuinely must allocate — error construction on a failure branch, a
// growth path amortized by design — carry //bovet:allow hotalloc with the
// justification, which also stops the site from entering the exported
// fact.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"bopsim/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid allocation sites in functions reachable from a //bovet:hotpath root, across packages",
	Run:       run,
	FactTypes: []analysis.Fact{(*Allocates)(nil)},
}

// Allocates is exported on every function from which an allocation site is
// statically reachable (its own body, same-package callees, or callees in
// already-analyzed module packages), so a hot caller in another package
// sees the allocation at its call site.
type Allocates struct {
	// Sites describes up to maxSites reachable allocation sites
	// ("map literal at cache.go:41", "calls bopsim/internal/x.F ...").
	Sites []string
}

// AFact marks Allocates as a fact type.
func (*Allocates) AFact() {}

// maxSites caps the evidence carried per function; one is enough to fail,
// a few make the finding actionable.
const maxSites = 3

// site is one allocation site collected from a function body.
type site struct {
	pos token.Pos
	msg string
}

// crossCall is a call to a module function in another package that
// carries an Allocates fact.
type crossCall struct {
	pos    token.Pos
	callee string
	sites  []string
}

func run(pass *analysis.Pass) error {
	var decls []*ast.FuncDecl
	byFunc := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				byFunc[fn] = fd
			}
			if analysis.HasHotpathDirective(fd) {
				roots = append(roots, fd)
			}
		}
	}

	// Per function: own allocation sites (allow-filtered), same-package
	// call edges, and cross-package allocating callees.
	own := make(map[*ast.FuncDecl][]site)
	callees := make(map[*ast.FuncDecl][]*ast.FuncDecl)
	cross := make(map[*ast.FuncDecl][]crossCall)
	for _, fd := range decls {
		own[fd] = collectSites(pass, fd)
		for _, call := range callsIn(fd) {
			fn := analysis.FuncFor(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				continue
			}
			if local, ok := byFunc[fn]; ok {
				callees[fd] = append(callees[fd], local)
				continue
			}
			if fn.Pkg() == pass.Pkg || !analysis.ModulePackage(fn.Pkg().Path()) {
				continue
			}
			var fact Allocates
			if pass.ImportObjectFact(fn, &fact) {
				cross[fd] = append(cross[fd], crossCall{
					pos:    call.Pos(),
					callee: fn.Pkg().Path() + "." + analysis.ObjectKey(fn),
					sites:  fact.Sites,
				})
			}
		}
	}

	// Fixpoint the transitive site summary for fact export: a function
	// inherits evidence from tainted same-package callees and from
	// cross-package facts. Declaration order keeps the summaries stable.
	summary := make(map[*ast.FuncDecl][]string)
	for _, fd := range decls {
		var sites []string
		for _, s := range own[fd] {
			sites = appendSite(sites, fmt.Sprintf("%s at %s", s.msg, pass.Fset.Position(s.pos)))
		}
		for _, cc := range cross[fd] {
			sites = appendSite(sites, fmt.Sprintf("calls %s (%s)", cc.callee, first(cc.sites)))
		}
		summary[fd] = sites
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			for _, callee := range callees[fd] {
				if len(summary[callee]) == 0 || len(summary[fd]) >= maxSites {
					continue
				}
				entry := fmt.Sprintf("calls %s (%s)", declName(pass, callee), first(summary[callee]))
				if !contains(summary[fd], entry) {
					summary[fd] = appendSite(summary[fd], entry)
					changed = true
				}
			}
		}
	}
	for _, fd := range decls {
		if len(summary[fd]) == 0 {
			continue
		}
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			pass.ExportObjectFact(fn, &Allocates{Sites: summary[fd]})
		}
	}

	// Static reachability from the annotated roots: same-package calls are
	// walked; cross-package calls were summarized into facts above.
	hot := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || hot[fd] {
			return
		}
		hot[fd] = true
		for _, callee := range callees[fd] {
			visit(callee)
		}
	}
	for _, fd := range roots {
		visit(fd)
	}

	for _, fd := range decls {
		if !hot[fd] {
			continue
		}
		for _, s := range own[fd] {
			pass.Reportf(s.pos, "%s", s.msg)
		}
		for _, cc := range cross[fd] {
			pass.Reportf(cc.pos, "call to %s in hot path reaches an allocation: %s", cc.callee, first(cc.sites))
		}
	}
	return nil
}

func appendSite(sites []string, s string) []string {
	if len(sites) >= maxSites {
		return sites
	}
	return append(sites, s)
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func first(sites []string) string {
	if len(sites) == 0 {
		return "allocation"
	}
	return sites[0]
}

func declName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return pass.Pkg.Path() + "." + analysis.ObjectKey(fn)
	}
	return fd.Name.Name
}

// callsIn returns every call expression in the function body, in source
// order, excluding those inside nested function literals (a closure's body
// is not part of the synchronous path).
func callsIn(fd *ast.FuncDecl) []*ast.CallExpr {
	var calls []*ast.CallExpr
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			calls = append(calls, n)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return calls
}

// collectSites gathers the function's own allocation sites, skipping any
// covered by a //bovet:allow hotalloc directive — an allowed cold path
// must not taint the function's callers either.
func collectSites(pass *analysis.Pass, fd *ast.FuncDecl) []site {
	var sites []site
	emit := func(pos token.Pos, format string, args ...any) {
		if pass.Allowed(pos) {
			return
		}
		sites = append(sites, site{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			emit(n.Pos(), "function literal in hot path: closures allocate when they capture")
			return false // its body is not part of the synchronous hot path
		case *ast.CompositeLit:
			checkCompositeLit(pass, emit, n)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					emit(n.Pos(), "&composite literal in hot path heap-allocates")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, emit, fd, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, emit, info.TypeOf(n.Lhs[i]), rhs)
				}
			}
		case *ast.ReturnStmt:
			checkReturn(pass, emit, fd, n)
		}
		return true
	})
	return sites
}

// emitFunc reports one allocation site.
type emitFunc func(pos token.Pos, format string, args ...any)

func checkCompositeLit(pass *analysis.Pass, emit emitFunc, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		emit(lit.Pos(), "map literal in hot path allocates")
	case *types.Slice:
		emit(lit.Pos(), "slice literal in hot path allocates")
	}
}

func checkCall(pass *analysis.Pass, emit emitFunc, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch {
	case analysis.IsBuiltin(info, call, "make"):
		emit(call.Pos(), "make in hot path allocates; preallocate in the constructor and reuse")
		return
	case analysis.IsBuiltin(info, call, "new"):
		emit(call.Pos(), "new in hot path allocates")
		return
	case analysis.IsBuiltin(info, call, "append"):
		checkAppend(pass, emit, fd, call)
		return
	}
	// Interface boxing at the call boundary: a concrete non-pointer-shaped
	// argument passed as an interface parameter allocates.
	sig, ok := typeOfFun(info, call).(*types.Signature)
	if !ok {
		// A type conversion T(x) with T an interface boxes too.
		if len(call.Args) == 1 {
			if t := conversionTarget(info, call); t != nil {
				checkBoxing(pass, emit, t, call.Args[0])
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, emit, pt, arg)
	}
}

func typeOfFun(info *types.Info, call *ast.CallExpr) types.Type {
	if tv, ok := info.Types[call.Fun]; ok && !tv.IsType() {
		return tv.Type
	}
	return nil
}

func conversionTarget(info *types.Info, call *ast.CallExpr) types.Type {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return tv.Type
	}
	return nil
}

// checkAppend allows the amortized receiver-owned scratch pattern —
// x = append(x, ...) or x = append(x[:0], ...) with the destination spelled
// identically — and flags every other append (fresh destination every call).
func checkAppend(pass *analysis.Pass, emit emitFunc, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if assign, ok := enclosingAssign(fd, call); ok {
		src := call.Args[0]
		if slice, isSlice := ast.Unparen(src).(*ast.SliceExpr); isSlice {
			src = slice.X
		}
		if types.ExprString(ast.Unparen(assign)) == types.ExprString(ast.Unparen(src)) {
			return
		}
	}
	// The in-place splice idiom append(x[:i], x[j:]...) writes into x's own
	// backing array: the result is never longer than x, so capacity always
	// suffices and nothing allocates.
	if call.Ellipsis.IsValid() && len(call.Args) == 2 {
		dst, dok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
		src, sok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
		if dok && sok && types.ExprString(dst.X) == types.ExprString(src.X) {
			return
		}
	}
	emit(call.Pos(), "append into a fresh slice in hot path allocates every call; use the amortized self-append pattern (x = append(x[:0], ...)) on a reused buffer")
}

// enclosingAssign returns the single LHS expression when call is the sole
// RHS of an assignment (x = append(...)).
func enclosingAssign(fd *ast.FuncDecl, call *ast.CallExpr) (ast.Expr, bool) {
	var out ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if a, ok := n.(*ast.AssignStmt); ok && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			if ast.Unparen(a.Rhs[0]) == call {
				out = a.Lhs[0]
				return false
			}
		}
		return true
	})
	return out, out != nil
}

func checkReturn(pass *analysis.Pass, emit emitFunc, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	results := fd.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // multi-value call forwarding; boxing happened at the callee
	}
	for i, expr := range ret.Results {
		checkBoxing(pass, emit, resultTypes[i], expr)
	}
}

// checkBoxing reports when a concrete non-pointer-shaped value is converted
// to an interface type: the conversion heap-allocates the value's copy.
// Pointer-shaped kinds (pointers, maps, chans, funcs, unsafe.Pointer) store
// directly in the interface word.
func checkBoxing(pass *analysis.Pass, emit emitFunc, dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if st == types.Typ[types.UntypedNil] {
		return
	}
	if tv.Value != nil {
		// A constant boxed into an interface is materialized as static
		// read-only data by the compiler; no runtime allocation.
		return
	}
	switch u := st.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface: no box
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return // pointer-shaped: stored in the interface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Info()&types.IsUntyped != 0 && tv.Value == nil {
			return
		}
	}
	emit(src.Pos(), "%s value boxed into interface %s in hot path allocates; pass a pointer or keep the call off the hot path", st, dst)
}
