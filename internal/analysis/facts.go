package analysis

// The facts layer makes bovet interprocedural across the module, mirroring
// golang.org/x/tools/go/analysis facts on the standard library only.
//
// A Fact is a serializable statement an analyzer proves about one object
// (a function, method, type or package-level variable) or about a whole
// package while analyzing the package that declares it. Packages are
// analyzed in dependency order — the loader emits dependencies before their
// importers, exactly as `go list -deps` orders them — so when a pass later
// analyzes an importer, the facts of everything it can reference are
// already available through Pass.ImportObjectFact / ImportPackageFact.
//
// This is what turns per-package invariants into module-wide ones: a
// result-affecting package calling an infra helper that (transitively)
// reads time.Now is a finding at the call site, because the helper's
// defining package exported a Nondeterministic fact on it; a hot loop
// calling a concrete function in another package is checked against that
// function's Allocates fact instead of stopping at the package edge.
//
// Encoding and identity. Facts travel as gob: each analyzer lists concrete
// prototypes in Analyzer.FactTypes, and the Runner registers them with gob
// before the first package runs. Objects are keyed by a stable string —
// "Name" for package-scope objects, "Recv.Name" for methods — which covers
// everything a downstream package can statically reference through export
// data (only package-scope objects and methods of named types are visible
// across a package boundary; an unexported helper's facts are consumed
// inside its own package and summarized onto its exported callers).
//
// Persistence. In standalone mode the Runner keeps a content-addressed
// fact cache under its work directory: one gob file per package, named by
// the SHA-256 of the package's compiler export data, its source bytes, the
// fact blobs of its direct module dependencies, and the suite's fact
// version. Any change to code or upstream facts changes the address, so
// stale facts can never be served; untouched packages load their facts
// without re-running a single analyzer. Under `go vet -vettool=` the go
// command owns the cache instead: dependency facts arrive through the
// .cfg's PackageVetx table and this package's facts leave through
// VetxOutput (see cmd/bovet/vettool.go).

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"strings"
)

// Fact is a statement proved about an object or package, exported by the
// pass analyzing the defining package and importable by every downstream
// pass. Implementations must be gob-encodable pointer types listed in
// their analyzer's FactTypes.
type Fact interface {
	// AFact is a marker; it has no behavior.
	AFact()
}

// factsVersion participates in every fact-cache address. Bump it whenever
// a fact type's meaning or encoding changes, so caches written by older
// analyzer logic are never consulted.
const factsVersion = 1

// ObjectKey returns the stable cross-package identity of a package-scope
// object: "Name" for functions, types, vars and consts, "Recv.Name" for
// methods of a named type. It returns "" for objects that cannot be
// referenced from another package's syntax (locals, struct fields,
// interface methods of anonymous interfaces), which are not keyable.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "" // not package-scope: invisible across packages
	}
	return obj.Name()
}

// factKey identifies one fact: the defining package, the object key (""
// for package facts), and the concrete fact type.
type factKey struct {
	pkg string
	obj string
	typ reflect.Type
}

// factStore holds every fact of the current run: imported ones (from the
// cache or the vet driver) and ones exported by passes as they execute.
type factStore struct {
	m map[factKey]Fact
	// order remembers per-package insertion order so encoded blobs are
	// byte-stable regardless of map iteration.
	order map[string][]factKey
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]Fact), order: make(map[string][]factKey)}
}

func (s *factStore) put(pkg, obj string, f Fact) {
	k := factKey{pkg, obj, reflect.TypeOf(f)}
	if _, dup := s.m[k]; !dup {
		s.order[pkg] = append(s.order[pkg], k)
	}
	s.m[k] = f
}

// get copies the stored fact for (pkg, obj, type of fptr) into fptr and
// reports whether one existed.
func (s *factStore) get(pkg, obj string, fptr Fact) bool {
	k := factKey{pkg, obj, reflect.TypeOf(fptr)}
	f, ok := s.m[k]
	if !ok {
		return false
	}
	reflect.ValueOf(fptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// wireFact is the gob record for one fact. The package is implicit: blobs
// are encoded and decoded per package.
type wireFact struct {
	Obj  string // ObjectKey, "" for a package fact
	Fact Fact
}

// encodePackage serializes every fact exported for pkgPath, in export
// order.
func (s *factStore) encodePackage(pkgPath string) ([]byte, error) {
	var recs []wireFact
	for _, k := range s.order[pkgPath] {
		recs = append(recs, wireFact{Obj: k.obj, Fact: s.m[k]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("encoding facts for %s: %v", pkgPath, err)
	}
	return buf.Bytes(), nil
}

// decodePackage merges a previously encoded blob's facts into the store
// under pkgPath.
func (s *factStore) decodePackage(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var recs []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding facts for %s: %v", pkgPath, err)
	}
	for _, r := range recs {
		s.put(pkgPath, r.Obj, r.Fact)
	}
	return nil
}

// RegisterFactTypes registers every analyzer's fact prototypes with gob.
// Idempotent per process; called by the Runner and the vettool driver
// before any encode or decode.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gobRegisterOnce(f)
		}
	}
}

var gobRegistered = make(map[reflect.Type]bool)

func gobRegisterOnce(f Fact) {
	t := reflect.TypeOf(f)
	if gobRegistered[t] {
		return
	}
	gobRegistered[t] = true
	gob.Register(f)
}

// ModulePackage reports whether pkgPath belongs to this module — the only
// packages bovet exports facts for (the standard library's behavior is
// axiomatic: it appears in analyzers as banned-function lists, not facts).
func ModulePackage(pkgPath string) bool {
	return pkgPath == strings.TrimSuffix(modulePrefix, "/") ||
		strings.HasPrefix(pkgPath, modulePrefix)
}
