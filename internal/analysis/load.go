package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package loading. bovet deliberately depends only on the standard library,
// so instead of golang.org/x/tools/go/packages it drives `go list -export`
// directly: one invocation enumerates the target packages and compiles
// export data for every dependency, then each target is parsed and
// type-checked against that export data (the same mechanism go/packages
// uses underneath). Works fully offline — the module has no third-party
// dependencies to fetch.
//
// For the facts layer, module dependencies of the targets are loaded too
// (parsed and type-checked from source, marked DepOnly): their facts must
// exist before an importer is analyzed, and compiler export data carries
// types but not the syntax facts are computed from. `go list -deps` emits
// dependencies before importers, so the returned slice is already in the
// dependency order Runner.Run requires. The Runner's content-addressed
// fact cache makes repeat visits to unchanged dependencies free.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go command, type-checks every matched
// package plus the module dependencies facts flow through, and returns
// them in dependency order, ready for Run. Non-module dependencies
// (the standard library) are resolved from compiler export data only.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var wanted []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly && (lp.Standard || !ModulePackage(lp.ImportPath)) {
			continue // facts are only computed for module packages
		}
		if lp.Error != nil {
			if lp.DepOnly {
				continue
			}
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		wanted = append(wanted, lp)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range wanted {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
	}
	var files []*ast.File
	var srcs []string
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
		srcs = append(srcs, path)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:  lp.ImportPath,
		Dir:      lp.Dir,
		Fset:     fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		SrcFiles: srcs,
		Export:   lp.Export,
		Imports:  lp.Imports,
		DepOnly:  lp.DepOnly,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Shared with the vettool driver and analysistest.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
