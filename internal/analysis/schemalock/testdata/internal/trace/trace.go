// Package trace is the dependency half of the schemalock cross-package
// fixture: GenState is locked here and consumed by engine.wide through the
// LockedSet fact; Unlocked deliberately is not locked.
package trace

// GenState matches its lock section: clean, and its membership in this
// package's LockedSet is what lets engine embed it.
//
//bovet:schemalock
type GenState struct {
	Seed uint64
}

// Unlocked is referenced by engine.wide without being governed here — the
// finding appears in engine, where the reference is.
type Unlocked struct {
	N int
}
