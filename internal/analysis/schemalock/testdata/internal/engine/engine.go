// Package engine is the schemalock fixture: one governed type per failure
// mode, one clean type, one excused drift, checked against the fixture lock
// in schemalock_test.go (which also records a stale engine.gone section).
package engine // want `schema.lock records bopsim/internal/engine.gone, which is no longer a governed serialized type`

import "bopsim/internal/trace"

// SnapshotVersion lags the lock header (3): the forgotten-bump failure
// mode, caught at the constant's declaration.
const SnapshotVersion = 2 // want `schema.lock was generated for SnapshotVersion = 3 but source declares 2`

// snapshot matches its lock section exactly: no finding.
//
//bovet:schemalock
type snapshot struct {
	Version int
	Cycles  uint64
}

// drifted gained a field since the lock was cut.
//
//bovet:schemalock
type drifted struct { // want `serialized layout of drifted differs from schema.lock \(added or changed: Added\)`
	Kept  int
	Added string
}

// unlocked is governed but was never recorded.
//
//bovet:schemalock
type unlocked struct { // want `serialized layout of unlocked is not recorded in schema.lock`
	X int
}

// wide reaches across packages: GenState is locked in trace (validated via
// its LockedSet fact), Unlocked is not.
//
//bovet:schemalock
type wide struct { // want `serialized field references bopsim/internal/trace.Unlocked, which is not schema-locked in its package`
	Gen trace.GenState
	Bad trace.Unlocked
}

// excused drifts (the lock says Changed int), but the drift is explicitly
// allowed.
//
//bovet:schemalock
//bovet:allow schemalock fixture: proves layout drift can be explicitly excused
type excused struct {
	Changed float64
}
