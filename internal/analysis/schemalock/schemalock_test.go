package schemalock_test

import (
	"strings"
	"testing"

	"bopsim/internal/analysis/analysistest"
	"bopsim/internal/analysis/schemalock"
)

// fixtureLock plays the role of a lock cut from a slightly older tree: one
// section matching testdata exactly (snapshot), one behind it (drifted,
// excused), one stale (gone), and a version header ahead of the source
// constant. The types the fixtures still govern but the lock never saw
// (unlocked) and the cross-package closure (wide → trace) complete the
// matrix.
const fixtureLock = `# fixture lock
snapshot-version 3

[bopsim/internal/engine.drifted]
Kept int

[bopsim/internal/engine.excused]
Changed int

[bopsim/internal/engine.gone]
X int

[bopsim/internal/engine.snapshot]
Version int
Cycles uint64

[bopsim/internal/engine.wide]
Gen bopsim/internal/trace.GenState
Bad bopsim/internal/trace.Unlocked

[bopsim/internal/trace.GenState]
Seed uint64
`

func TestSchemalock(t *testing.T) {
	defer schemalock.OverrideLockForTest(fixtureLock)()
	analysistest.Run(t, "testdata", schemalock.Analyzer)
}

// TestCheckBumpRefusesUnbumpedRegen pins the generator half of the
// enforcement: a domain whose sections changed while its version constant
// stayed put cannot be regenerated over.
func TestCheckBumpRefusesUnbumpedRegen(t *testing.T) {
	c := schemalock.NewCollector()
	c.Sections["bopsim/internal/engine.snapshot"] = []string{"Version int", "Cycles uint64", "Extra bool"}
	c.Versions["snapshot-version"] = 3

	old := "snapshot-version 3\n\n[bopsim/internal/engine.snapshot]\nVersion int\nCycles uint64\n"
	err := c.CheckBump([]byte(old))
	if err == nil {
		t.Fatal("regeneration accepted without a version bump")
	}
	if !strings.Contains(err.Error(), "snapshot-version sections changed") || !strings.Contains(err.Error(), "bump the version constant") {
		t.Errorf("refusal does not name the unbumped domain: %v", err)
	}

	// Bumping the constant unblocks the same regeneration.
	c.Versions["snapshot-version"] = 4
	if err := c.CheckBump([]byte(old)); err != nil {
		t.Errorf("regeneration refused after the bump: %v", err)
	}

	// An unchanged domain never needs a bump.
	same := schemalock.NewCollector()
	same.Sections["bopsim/internal/engine.snapshot"] = []string{"Version int", "Cycles uint64"}
	same.Versions["snapshot-version"] = 3
	if err := same.CheckBump([]byte(old)); err != nil {
		t.Errorf("identical regeneration refused: %v", err)
	}
}
