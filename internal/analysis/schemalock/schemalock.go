// Package schemalock pins the serialized layouts the repo's compatibility
// promises rest on. Three byte formats outlive a single process: engine
// checkpoints (gob snapshot payload, governed by engine.SnapshotVersion),
// the distrib wire protocol (JSON request/response structs, governed by
// distrib.ProtocolVersion), and the experiments result cache (JSON
// CacheEntry files — doubling as the distrib result payload — governed by
// the result-cache version). Each is guarded by a version constant that a
// human must bump when the layout changes; before this analyzer, nothing
// checked that they actually did, and a forgotten bump surfaces as silent
// corruption (a restored checkpoint decoding garbage, a worker poisoning a
// shared cache) rather than a refused version.
//
// schemalock derives the serialized field-set of every governed struct and
// diffs it against the committed schema.lock (this package's schema.lock
// file, embedded at build time). Structs are governed when they are:
//
//   - encoded or decoded with encoding/gob, encoding/json, or the
//     prefetch.MarshalState/UnmarshalState codec helpers, in a
//     result-affecting package (infra packages serialize plenty of
//     ephemeral JSON — status endpoints, journals — that carries no
//     cross-version promise);
//   - a named struct in the signature of a SaveState/RestoreState method
//     (the checkpoint contract's state-mirror types, e.g. cpu.State);
//   - annotated //bovet:schemalock (the explicit root for structs whose
//     encoding happens in another package — cpu.Config inside the warmup
//     signature, the distrib wire structs, experiments.CacheEntry);
//   - reachable from any of the above through field types: the closure
//     follows slices, arrays, maps, pointers and anonymous structs, locks
//     same-package named structs transitively, and requires named structs
//     from other module packages to be locked in their own package
//     (checked via the LockedSet package fact, so the chain engine.snapshot
//     → cpu.State → cpu.Config is validated end to end across package
//     boundaries).
//
// A drifted layout, a governed type missing from the lock, a stale lock
// entry, or a version constant disagreeing with the lock header are all
// findings; the fix is `make schema-lock`, whose generator (Collected,
// driven by cmd/bovet -write-schema-lock) refuses to regenerate a domain's
// sections unless its version constant was bumped — so the analyzer
// catches drift and the generator enforces the bump, and the committed
// lock is the reviewed record tying layout to version.
package schemalock

import (
	"bufio"
	"bytes"
	_ "embed"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"bopsim/internal/analysis"
)

// Analyzer is the schemalock pass.
var Analyzer = &analysis.Analyzer{
	Name:      "schemalock",
	Doc:       "serialized layouts (checkpoint, wire, cache) must match the committed schema.lock, and layout changes must bump the governing version constant",
	Run:       run,
	FactTypes: []analysis.Fact{(*LockedSet)(nil)},
}

// LockedSet is exported by every analyzed package and names the struct
// types whose serialized layout that package locks. An importer whose
// locked struct embeds a struct from this package checks membership here,
// which is what lets the closure cross package boundaries soundly.
type LockedSet struct {
	Types []string
}

// AFact marks LockedSet as a fact type.
func (*LockedSet) AFact() {}

//go:embed schema.lock
var embeddedLock string

var lockState struct {
	sync.Mutex
	raw    string
	parsed *lockFile
	err    error
}

// OverrideLockForTest replaces the embedded schema.lock until the returned
// restore function runs. Fixture tests use it to pit fixture packages
// against a fixture lock.
func OverrideLockForTest(data string) (restore func()) {
	lockState.Lock()
	defer lockState.Unlock()
	prev := lockState.raw
	lockState.raw, lockState.parsed, lockState.err = data, nil, nil
	return func() {
		lockState.Lock()
		defer lockState.Unlock()
		lockState.raw, lockState.parsed, lockState.err = prev, nil, nil
	}
}

func currentLock() (*lockFile, error) {
	lockState.Lock()
	defer lockState.Unlock()
	if lockState.raw == "" && lockState.parsed == nil && lockState.err == nil {
		lockState.raw = embeddedLock
	}
	if lockState.parsed == nil && lockState.err == nil {
		lockState.parsed, lockState.err = parseLock(lockState.raw)
	}
	return lockState.parsed, lockState.err
}

// versionConsts maps the three packages that define a governing version
// constant to the lock-header key recording it.
var versionConsts = map[string]struct {
	header    string
	constName string
}{
	"bopsim/internal/engine":      {"snapshot-version", "SnapshotVersion"},
	"bopsim/internal/distrib":     {"protocol-version", "ProtocolVersion"},
	"bopsim/internal/experiments": {"result-cache-version", "resultCacheVersion"},
}

// domainOf returns the lock-header version key governing a package's
// sections and the human name of the constant to bump.
func domainOf(pkgPath string) (header, constRef string) {
	switch pkgPath {
	case "bopsim/internal/distrib":
		return "protocol-version", "distrib.ProtocolVersion"
	case "bopsim/internal/experiments":
		return "result-cache-version", "the result-cache version (experiments.resultCacheVersion)"
	default:
		return "snapshot-version", "engine.SnapshotVersion"
	}
}

func run(pass *analysis.Pass) error {
	s := derive(pass)
	pass.ExportPackageFact(&LockedSet{Types: s.names()})
	if len(s.order) == 0 && !definesVersionConst(pass) {
		return nil
	}
	lock, err := currentLock()
	if err != nil {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Package, "schema.lock is unreadable: %v; run `make schema-lock`", err)
		}
		return nil
	}

	pkgPath := pass.Pkg.Path()
	_, constRef := domainOf(pkgPath)
	for _, name := range s.order {
		key := pkgPath + "." + name
		locked, ok := lock.sections[key]
		if !ok {
			pass.Reportf(s.pos[name], "serialized layout of %s is not recorded in schema.lock; run `make schema-lock` (bumping %s if the layout of already-released data changed)", name, constRef)
			continue
		}
		if d := diffLines(locked, s.fields[name]); d != "" {
			pass.Reportf(s.pos[name], "serialized layout of %s differs from schema.lock (%s); bump %s and run `make schema-lock`", name, d, constRef)
		}
	}
	for _, name := range lock.byPkg[pkgPath] {
		if _, ok := s.fields[name]; !ok {
			pos := token.NoPos
			if len(pass.Files) > 0 {
				pos = pass.Files[0].Package
			}
			pass.Reportf(pos, "schema.lock records %s.%s, which is no longer a governed serialized type; run `make schema-lock`", pkgPath, name)
		}
	}

	if vc, ok := versionConsts[pkgPath]; ok {
		if obj, val, pos := lookupIntConst(pass, vc.constName); obj {
			if recorded, ok := lock.versions[vc.header]; ok && recorded != val {
				pass.Reportf(pos, "schema.lock was generated for %s = %d but source declares %d; run `make schema-lock` to re-record the layouts this version governs", vc.constName, recorded, val)
			}
		}
	}
	return nil
}

func definesVersionConst(pass *analysis.Pass) bool {
	_, ok := versionConsts[pass.Pkg.Path()]
	return ok
}

// lookupIntConst resolves a package-scope integer constant's value and
// declaration position.
func lookupIntConst(pass *analysis.Pass, name string) (found bool, val int, pos token.Pos) {
	obj := pass.Pkg.Scope().Lookup(name)
	c, ok := obj.(*types.Const)
	if !ok {
		return false, 0, token.NoPos
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	if !ok {
		return false, 0, token.NoPos
	}
	return true, int(v), c.Pos()
}

// diffLines summarizes the first divergence between the locked and derived
// field lines, so the finding says what moved instead of just "differs".
func diffLines(locked, derived []string) string {
	if len(locked) == len(derived) {
		same := true
		for i := range locked {
			if locked[i] != derived[i] {
				same = false
				break
			}
		}
		if same {
			return ""
		}
	}
	lockedSet := make(map[string]bool, len(locked))
	for _, l := range locked {
		lockedSet[l] = true
	}
	derivedSet := make(map[string]bool, len(derived))
	for _, l := range derived {
		derivedSet[l] = true
	}
	var added, removed []string
	for _, l := range derived {
		if !lockedSet[l] {
			added = append(added, strings.Fields(l)[0])
		}
	}
	for _, l := range locked {
		if !derivedSet[l] {
			removed = append(removed, strings.Fields(l)[0])
		}
	}
	switch {
	case len(added) > 0 && len(removed) > 0:
		return fmt.Sprintf("changed or added: %s; removed or changed: %s", strings.Join(added, ", "), strings.Join(removed, ", "))
	case len(added) > 0:
		return "added or changed: " + strings.Join(added, ", ")
	case len(removed) > 0:
		return "removed or changed: " + strings.Join(removed, ", ")
	default:
		return "field order changed"
	}
}

// schema is one package's derived lock content.
type schema struct {
	order  []string // locked type names, sorted
	fields map[string][]string
	pos    map[string]token.Pos
}

func (s *schema) names() []string { return append([]string(nil), s.order...) }

// encoderFuncs are the calls whose struct arguments are serialization
// roots, keyed by defining package then function/method name.
var encoderFuncs = map[string]map[string]bool{
	"encoding/json":            {"Marshal": true, "MarshalIndent": true, "Unmarshal": true, "Encode": true, "Decode": true},
	"encoding/gob":             {"Encode": true, "Decode": true, "EncodeValue": true, "DecodeValue": true},
	"bopsim/internal/prefetch": {"MarshalState": true, "UnmarshalState": true},
}

// derive computes the package's governed types and their serialized field
// lines, reporting cross-package references to unlocked structs as it goes.
func derive(pass *analysis.Pass) *schema {
	s := &schema{fields: make(map[string][]string), pos: make(map[string]token.Pos)}
	roots := make(map[string]bool)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declHas := analysis.HasSchemalockDirective(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declHas || analysis.HasSchemalockDirective(ts.Doc) {
					if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
						pass.Reportf(ts.Name.Pos(), "//bovet:schemalock applies to struct types; %s is not a struct", ts.Name.Name)
						continue
					}
					roots[ts.Name.Name] = true
				}
			}
		}
	}

	if analysis.ResultAffecting(pass.Pkg.Path()) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				codecSignatureRoots(pass, fd, roots)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := analysis.FuncFor(pass.TypesInfo, call)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					if names, ok := encoderFuncs[fn.Pkg().Path()]; !ok || !names[fn.Name()] {
						return true
					}
					for _, arg := range call.Args {
						if name := localStructName(pass, pass.TypesInfo.TypeOf(arg)); name != "" {
							roots[name] = true
						}
					}
					return true
				})
			}
		}
	}

	// Close over field types, locking same-package named structs and
	// validating cross-package ones against their LockedSet fact. The
	// worklist is drained in sorted order so the derived sections — and
	// the findings — are deterministic.
	locked := make(map[string]bool)
	queue := sortedKeys(roots)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if locked[name] {
			continue
		}
		obj, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := types.Unalias(obj.Type()).Underlying().(*types.Struct)
		if !ok {
			continue
		}
		locked[name] = true
		s.pos[name] = obj.Pos()
		var more []string
		s.fields[name] = renderStruct(pass, obj.Pos(), st, &more)
		sort.Strings(more)
		queue = append(queue, more...)
	}
	s.order = sortedKeys(locked)
	return s
}

// codecSignatureRoots adds named structs appearing in a SaveState result or
// RestoreState parameter — the checkpoint contract's state-mirror types.
func codecSignatureRoots(pass *analysis.Pass, fd *ast.FuncDecl, roots map[string]bool) {
	if fd.Recv == nil {
		return
	}
	var fields *ast.FieldList
	switch fd.Name.Name {
	case "SaveState":
		fields = fd.Type.Results
	case "RestoreState":
		fields = fd.Type.Params
	default:
		return
	}
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if name := localStructName(pass, pass.TypesInfo.TypeOf(f.Type)); name != "" {
			roots[name] = true
		}
	}
}

// localStructName returns the name of t (pointers stripped) when it is a
// named struct declared in the package under analysis.
func localStructName(pass *analysis.Pass, t types.Type) string {
	for {
		p, ok := types.Unalias(t).(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return ""
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return ""
	}
	return named.Obj().Name()
}

// renderStruct renders the exported fields of st as lock lines, appending
// newly discovered same-package struct names to more.
func renderStruct(pass *analysis.Pass, pos token.Pos, st *types.Struct, more *[]string) []string {
	var lines []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // gob and json both skip unexported fields
		}
		line := f.Name() + " " + renderType(pass, pos, f.Type(), more)
		if tag := st.Tag(i); tag != "" {
			line += " `" + tag + "`"
		}
		lines = append(lines, line)
	}
	return lines
}

// renderType produces the deterministic lock spelling of a field type.
// Same-package named structs render by bare name (and join the closure);
// named structs from other module packages render fully qualified and must
// be locked in their own package; named non-structs render with their
// underlying type, so `type PageSize int` changing to int64 is drift.
func renderType(pass *analysis.Pass, pos token.Pos, t types.Type, more *[]string) string {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		obj := t.Obj()
		pkg := obj.Pkg()
		if pkg == nil {
			return t.String() // error and other universe types
		}
		if _, isStruct := t.Underlying().(*types.Struct); isStruct {
			switch {
			case pkg == pass.Pkg:
				*more = append(*more, obj.Name())
				return obj.Name()
			case analysis.ModulePackage(pkg.Path()):
				var ls LockedSet
				if !pass.ImportPackageFact(pkg.Path(), &ls) || !containsString(ls.Types, obj.Name()) {
					pass.Reportf(pos, "serialized field references %s.%s, which is not schema-locked in its package; annotate it //bovet:schemalock so its layout is governed too", pkg.Path(), obj.Name())
				}
				return pkg.Path() + "." + obj.Name()
			default:
				return pkg.Path() + "." + obj.Name() // stdlib struct: its encoding is the stdlib's promise
			}
		}
		// Named non-struct: spell out the underlying representation.
		prefix := obj.Name()
		if pkg != pass.Pkg {
			prefix = pkg.Path() + "." + obj.Name()
		}
		return prefix + "=" + renderType(pass, pos, t.Underlying(), more)
	case *types.Pointer:
		return "*" + renderType(pass, pos, t.Elem(), more)
	case *types.Slice:
		return "[]" + renderType(pass, pos, t.Elem(), more)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), renderType(pass, pos, t.Elem(), more))
	case *types.Map:
		return "map[" + renderType(pass, pos, t.Key(), more) + "]" + renderType(pass, pos, t.Elem(), more)
	case *types.Struct:
		inner := renderStruct(pass, pos, t, more)
		return "struct{" + strings.Join(inner, "; ") + "}"
	case *types.Basic:
		return t.Name()
	default:
		// Interfaces, channels, funcs: not serializable layouts; record the
		// spelling so a change is still drift.
		return types.TypeString(t, func(p *types.Package) string { return p.Path() })
	}
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockFile is the parsed schema.lock.
type lockFile struct {
	versions map[string]int
	sections map[string][]string // "pkgPath.Type" -> field lines
	byPkg    map[string][]string // pkgPath -> type names, file order
}

func parseLock(data string) (*lockFile, error) {
	lf := &lockFile{
		versions: make(map[string]int),
		sections: make(map[string][]string),
		byPkg:    make(map[string][]string),
	}
	var current string
	sc := bufio.NewScanner(strings.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimRight(sc.Text(), " \t")
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]"):
			current = line[1 : len(line)-1]
			pkg, typeName, ok := splitSectionKey(current)
			if !ok {
				return nil, fmt.Errorf("line %d: malformed section header %q", lineNo, line)
			}
			if _, dup := lf.sections[current]; dup {
				return nil, fmt.Errorf("line %d: duplicate section %q", lineNo, line)
			}
			lf.sections[current] = nil
			lf.byPkg[pkg] = append(lf.byPkg[pkg], typeName)
		case current == "":
			key, value, ok := strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed header line %q", lineNo, line)
			}
			var v int
			if _, err := fmt.Sscanf(value, "%d", &v); err != nil {
				return nil, fmt.Errorf("line %d: header %s: %v", lineNo, key, err)
			}
			lf.versions[key] = v
		default:
			lf.sections[current] = append(lf.sections[current], line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return lf, nil
}

// splitSectionKey splits "bopsim/internal/engine.snapshot" at the last dot
// after the final slash, so package paths containing dots stay intact.
func splitSectionKey(key string) (pkg, typeName string, ok bool) {
	slash := strings.LastIndexByte(key, '/')
	dot := strings.IndexByte(key[slash+1:], '.')
	if dot < 0 {
		return "", "", false
	}
	dot += slash + 1
	return key[:dot], key[dot+1:], true
}

// Collected accumulates derived sections across an entire run, for the
// `make schema-lock` generator (cmd/bovet -write-schema-lock).
type Collected struct {
	Sections map[string][]string
	Versions map[string]int
}

// NewCollector returns an empty accumulator.
func NewCollector() *Collected {
	return &Collected{Sections: make(map[string][]string), Versions: make(map[string]int)}
}

// Analyzer returns the derivation-only pass feeding the collector. It keeps
// the name "schemalock" so //bovet:allow schemalock directives bind to it,
// and still exports LockedSet facts so the cross-package closure checks run
// during generation too — an incomplete lock cannot be generated silently.
func (c *Collected) Analyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      Analyzer.Name,
		Doc:       "derive schema.lock sections (generator mode)",
		FactTypes: []analysis.Fact{(*LockedSet)(nil)},
		Run: func(pass *analysis.Pass) error {
			s := derive(pass)
			pass.ExportPackageFact(&LockedSet{Types: s.names()})
			for _, name := range s.order {
				c.Sections[pass.Pkg.Path()+"."+name] = s.fields[name]
			}
			if vc, ok := versionConsts[pass.Pkg.Path()]; ok {
				if found, val, _ := lookupIntConst(pass, vc.constName); found {
					c.Versions[vc.header] = val
				}
			}
			return nil
		},
	}
}

// CheckBump compares the freshly derived sections against the previous
// lock and refuses regeneration when a version domain's sections changed
// without its version constant changing. This is the other half of the
// enforcement: the analyzer catches drift against the committed lock, the
// generator makes the bump a precondition of committing a new one.
func (c *Collected) CheckBump(old []byte) error {
	if len(bytes.TrimSpace(old)) == 0 {
		return nil // first generation
	}
	prev, err := parseLock(string(old))
	if err != nil {
		return nil // unparseable old lock: regenerating is the fix
	}
	changed := make(map[string][]string) // header key -> changed section keys
	note := func(key string) {
		pkg, _, _ := splitSectionKey(key)
		header, _ := domainOf(pkg)
		changed[header] = append(changed[header], key)
	}
	for key, lines := range c.Sections {
		if prevLines, ok := prev.sections[key]; !ok || diffLines(prevLines, lines) != "" {
			note(key)
		}
	}
	for key := range prev.sections {
		if _, ok := c.Sections[key]; !ok {
			note(key)
		}
	}
	var errs []string
	for header, keys := range changed {
		prevV, had := prev.versions[header]
		if had && prevV == c.Versions[header] {
			sort.Strings(keys)
			errs = append(errs, fmt.Sprintf("%s sections changed (%s) but %s is still %d; bump the version constant first",
				header, strings.Join(keys, ", "), header, prevV))
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("refusing to regenerate schema.lock:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// Format renders the lock file: version header, then sections sorted by
// key, fields in declaration order. Byte-stable for identical input.
func (c *Collected) Format() []byte {
	var b bytes.Buffer
	b.WriteString("# schema.lock — serialized layouts governed by version constants.\n")
	b.WriteString("# Generated by `make schema-lock`; do not edit by hand.\n")
	b.WriteString("# The schemalock analyzer (cmd/bovet) fails when source drifts from\n")
	b.WriteString("# this file; the generator refuses to regenerate a domain's sections\n")
	b.WriteString("# unless its version constant was bumped.\n")
	for _, header := range []string{"snapshot-version", "protocol-version", "result-cache-version"} {
		if v, ok := c.Versions[header]; ok {
			fmt.Fprintf(&b, "%s %d\n", header, v)
		}
	}
	keys := make([]string, 0, len(c.Sections))
	for k := range c.Sections {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "\n[%s]\n", k)
		for _, line := range c.Sections[k] {
			b.WriteString(line + "\n")
		}
	}
	return b.Bytes()
}
