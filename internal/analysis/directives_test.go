package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc runs parseAllows over one synthetic file with two known
// analyzers, returning the allow set and the malformed-directive findings.
func parseSrc(t *testing.T, src string) (*allowSet, []Finding) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	known := []*Analyzer{{Name: "nondeterm"}, {Name: "hotalloc"}}
	return parseAllows(fset, []*ast.File{f}, known)
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	allows, bad := parseSrc(t, `package p

func f() {
	//bovet:allow nondeterm justified because this is a fixture
	g()
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive findings: %v", bad)
	}
	// The directive is on line 4; it must cover its own line and line 5.
	for _, line := range []int{4, 5} {
		if !allows.suppresses("nondeterm", token.Position{Filename: "fixture.go", Line: line}) {
			t.Errorf("line %d: directive does not suppress nondeterm", line)
		}
	}
	if allows.suppresses("nondeterm", token.Position{Filename: "fixture.go", Line: 6}) {
		t.Error("line 6: directive leaks beyond the next line")
	}
	if allows.suppresses("hotalloc", token.Position{Filename: "fixture.go", Line: 5}) {
		t.Error("directive for nondeterm must not suppress hotalloc")
	}
}

func TestAllowDirectiveAnalyzerList(t *testing.T) {
	allows, bad := parseSrc(t, `package p

//bovet:allow nondeterm,hotalloc shared scratch justified twice over
var x int
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive findings: %v", bad)
	}
	for _, name := range []string{"nondeterm", "hotalloc"} {
		if !allows.suppresses(name, token.Position{Filename: "fixture.go", Line: 4}) {
			t.Errorf("comma list does not suppress %s", name)
		}
	}
}

func TestMalformedDirectivesAreFindings(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		wantMsg string
	}{
		{"missing reason", "//bovet:allow nondeterm", "has no justifying reason"},
		{"missing everything", "//bovet:allow", "needs an analyzer name and a justifying reason"},
		{"unknown analyzer", "//bovet:allow nosuchpass because reasons", "unknown analyzer nosuchpass"},
		{"unknown verb", "//bovet:frobnicate", "unknown bovet directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			allows, bad := parseSrc(t, "package p\n\n"+tc.comment+"\nvar x int\n")
			if len(bad) != 1 {
				t.Fatalf("want exactly one finding, got %v", bad)
			}
			if bad[0].Analyzer != "bovet" {
				t.Errorf("finding attributed to %q, want the bovet pseudo-analyzer", bad[0].Analyzer)
			}
			if !strings.Contains(bad[0].Message, tc.wantMsg) {
				t.Errorf("finding %q does not mention %q", bad[0].Message, tc.wantMsg)
			}
			if allows.suppresses("nondeterm", token.Position{Filename: "fixture.go", Line: 4}) {
				t.Error("a malformed directive must not suppress anything")
			}
		})
	}
}

func TestHotpathDirective(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", `package p

// Hot is annotated.
//
//bovet:hotpath
func Hot() {}

// Cold mentions bovet:hotpath in prose only.
func Cold() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	byName := map[string]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			byName[fd.Name.Name] = HasHotpathDirective(fd)
		}
	}
	if !byName["Hot"] {
		t.Error("Hot: directive not detected")
	}
	if byName["Cold"] {
		t.Error("Cold: prose mention misdetected as a directive")
	}
}
