// Package cache is a synthetic fixture for the statecodec analyzer covering
// each classification: serialized state, forgotten state, immutable
// configuration, exempt wiring, and an annotated exception.
package cache

// Counter checkpoints hits but forgets misses.
type Counter struct {
	limit  int // never mutated: configuration, no finding
	hits   int
	misses int // want `Counter\.misses is mutated by methods but never touched by SaveState/RestoreState`
	//bovet:allow statecodec fixture: scratch is rebuilt on every call, never carried across a checkpoint
	scratch []byte
	onEvict func() // func-typed fields are wiring, exempt
}

// Observe mutates hits, misses and scratch.
func (c *Counter) Observe(hit bool) {
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.scratch = c.scratch[:0]
	if c.onEvict != nil && c.hits > c.limit {
		c.onEvict()
	}
}

// SaveState serializes hits only.
func (c *Counter) SaveState() ([]byte, error) {
	return []byte{byte(c.hits)}, nil
}

// RestoreState restores hits only.
func (c *Counter) RestoreState(b []byte) error {
	c.hits = int(b[0])
	return nil
}

// Meter proves transitive reference tracking: the codec touches its fields
// only through the encode helper, which must count as referenced.
type Meter struct {
	total uint64
	rate  uint64
}

// Tick mutates both fields.
func (m *Meter) Tick() {
	m.total++
	m.rate++
}

// SaveState delegates to a same-package helper.
func (m *Meter) SaveState() ([]byte, error) { return m.encode(), nil }

func (m *Meter) encode() []byte { return []byte{byte(m.total), byte(m.rate)} }

// RestoreState restores both fields directly.
func (m *Meter) RestoreState(b []byte) error {
	m.total = uint64(b[0])
	m.rate = uint64(b[1])
	return nil
}

// Plain has mutable fields but no codec methods: out of scope, no findings.
type Plain struct {
	n int
}

// Bump mutates n.
func (p *Plain) Bump() { p.n++ }
