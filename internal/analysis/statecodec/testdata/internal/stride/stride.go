// Package stride is the fix-forward regression fixture: a trimmed copy of
// the real internal/stride DL1 prefetcher (table + recent-prefetch filter +
// mirror-struct JSON codec, the PR 3/PR 4 design) with one deliberate bug —
// the filter's age counters are mutated on every Query but never
// serialized. Before the analyzer existed, this exact class of omission was
// only catchable by the golden determinism suite happening to exercise the
// stale field after a restore; statecodec must turn it into a finding.
package stride

import "encoding/json"

const (
	tableEntries  = 8
	filterEntries = 4
)

type entry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int
	valid    bool
}

// Prefetcher is the trimmed stride prefetcher.
type Prefetcher struct {
	entries [tableEntries]entry
	clock   uint64

	filter    [filterEntries]uint64
	filterAge [filterEntries]uint64 // want `Prefetcher\.filterAge is mutated by methods but never touched by SaveState/RestoreState`
	filterLen int
}

// Query touches the filter ages (LRU bookkeeping) on every call.
func (p *Prefetcher) Query(pc uint64, va uint64) (uint64, bool) {
	p.clock++
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid || e.pc != pc {
			continue
		}
		if e.conf < 3 || e.stride == 0 {
			return 0, false
		}
		target := va + uint64(e.stride)
		for j := 0; j < p.filterLen; j++ {
			if p.filter[j] == target {
				p.filterAge[j] = p.clock
				return 0, false
			}
		}
		slot := 0
		if p.filterLen < filterEntries {
			slot = p.filterLen
			p.filterLen++
		} else {
			for j := 1; j < filterEntries; j++ {
				if p.filterAge[j] < p.filterAge[slot] {
					slot = j
				}
			}
		}
		p.filter[slot] = target
		p.filterAge[slot] = p.clock
		return target, true
	}
	return 0, false
}

// Update records a retirement into the table.
func (p *Prefetcher) Update(pc uint64, va uint64) {
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.pc == pc {
			stride := int64(va) - int64(e.lastAddr)
			if stride == e.stride {
				if e.conf < 3 {
					e.conf++
				}
			} else {
				e.conf = 0
			}
			e.stride = stride
			e.lastAddr = va
			return
		}
	}
	p.entries[int(pc)%tableEntries] = entry{pc: pc, lastAddr: va, valid: true}
}

// entryState mirrors entry with exported fields.
type entryState struct {
	PC       uint64
	LastAddr uint64
	Stride   int64
	Conf     int
	Valid    bool
}

// strideState mirrors the prefetcher — minus the forgotten filterAge.
type strideState struct {
	Entries   []entryState
	Clock     uint64
	Filter    []uint64
	FilterLen int
}

// SaveState serializes everything except filterAge: the seeded bug.
func (p *Prefetcher) SaveState() ([]byte, error) {
	st := strideState{
		Clock:     p.clock,
		Filter:    append([]uint64(nil), p.filter[:]...),
		FilterLen: p.filterLen,
	}
	for i := range p.entries {
		e := &p.entries[i]
		st.Entries = append(st.Entries, entryState{
			PC: e.pc, LastAddr: e.lastAddr, Stride: e.stride,
			Conf: e.conf, Valid: e.valid,
		})
	}
	return json.Marshal(st)
}

// RestoreState is SaveState's inverse, equally ignorant of filterAge.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st strideState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	for i := range p.entries {
		e := st.Entries[i]
		p.entries[i] = entry{pc: e.PC, lastAddr: e.LastAddr, stride: e.Stride, conf: e.Conf, valid: e.Valid}
	}
	p.clock = st.Clock
	copy(p.filter[:], st.Filter)
	p.filterLen = st.FilterLen
	return nil
}
