package statecodec_test

import (
	"testing"

	"bopsim/internal/analysis/analysistest"
	"bopsim/internal/analysis/statecodec"
)

// TestStatecodec covers the synthetic classification matrix
// (internal/cache) and the fix-forward regression fixture: a trimmed copy
// of the real stride prefetcher with its filter-age counters deliberately
// left out of the codec (internal/stride).
func TestStatecodec(t *testing.T) {
	analysistest.Run(t, "testdata", statecodec.Analyzer)
}
