// Package statecodec verifies checkpoint completeness: for every type with
// SaveState/RestoreState codec methods (the engine's checkpoint contract,
// including prefetch.StateCodec implementers), each mutable struct field
// must be referenced by the codec — otherwise a checkpointed run silently
// diverges from a straight run the first time that field matters.
//
// This is the PR 4 footgun made a build error: adding a field to a stateful
// component and forgetting to thread it through the codec used to be
// detectable only by the golden determinism suite actually exercising that
// field's behavior under a checkpoint.
//
// "Mutable" means some method of the type assigns the field (or an element
// of it, or takes its address); construction-time-only configuration is
// ignored. "Referenced" means the field is selected anywhere in SaveState,
// RestoreState, or a same-package function/method they (transitively)
// call. Func- and chan-typed fields are exempt — they are wiring, not
// serializable state. A field that genuinely need not round-trip carries
// "//bovet:allow statecodec <reason>" on its declaration line.
package statecodec

import (
	"go/ast"
	"go/types"

	"bopsim/internal/analysis"
)

// Analyzer is the statecodec pass.
var Analyzer = &analysis.Analyzer{
	Name: "statecodec",
	Doc:  "report mutable fields of SaveState/RestoreState types that the codec methods never touch",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	funcs := indexFuncs(pass)
	for typeName, methods := range methodsByType(pass) {
		save, hasSave := methods["SaveState"]
		restore, hasRestore := methods["RestoreState"]
		if !hasSave || !hasRestore {
			continue
		}
		st := structOf(pass, typeName)
		if st == nil {
			continue
		}
		referenced := make(map[string]bool)
		seen := make(map[*ast.FuncDecl]bool)
		collectReferences(pass, funcs, save, referenced, seen)
		collectReferences(pass, funcs, restore, referenced, seen)

		mutable := mutableFields(pass, methods)
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				if name.Name == "_" || referenced[name.Name] || !mutable[name.Name] {
					continue
				}
				if exemptType(pass.TypesInfo.TypeOf(field.Type)) {
					continue
				}
				pass.Reportf(name.Pos(), "%s.%s is mutated by methods but never touched by SaveState/RestoreState; a restored checkpoint silently diverges (serialize it or annotate why it need not round-trip)",
					typeName, name.Name)
			}
		}
	}
	return nil
}

// methodsByType groups the package's method declarations by receiver base
// type name.
func methodsByType(pass *analysis.Pass) map[string]map[string]*ast.FuncDecl {
	out := make(map[string]map[string]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			base := receiverBase(fd.Recv.List[0].Type)
			if base == "" {
				continue
			}
			if out[base] == nil {
				out[base] = make(map[string]*ast.FuncDecl)
			}
			out[base][fd.Name.Name] = fd
		}
	}
	return out
}

func receiverBase(expr ast.Expr) string {
	switch t := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverBase(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverBase(t.X)
	case *ast.IndexListExpr:
		return receiverBase(t.X)
	}
	return ""
}

// structOf returns the declared struct type for the named type, or nil when
// the type is not a struct declared in this package.
func structOf(pass *analysis.Pass, name string) *ast.StructType {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
				return nil
			}
		}
	}
	return nil
}

// collectReferences walks a codec method recording every receiver field it
// selects, following calls to same-receiver methods and to same-package
// functions the receiver is passed to (the split-helper pattern:
// cache.LRU.SaveState -> p.state.save).
func collectReferences(pass *analysis.Pass, funcs map[*types.Func]*ast.FuncDecl, decl *ast.FuncDecl, referenced map[string]bool, seen map[*ast.FuncDecl]bool) {
	if decl == nil || decl.Body == nil || seen[decl] {
		return
	}
	seen[decl] = true
	roots := parameterObjects(pass, decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && roots[pass.TypesInfo.Uses[id]] {
				referenced[n.Sel.Name] = true
			}
		case *ast.CallExpr:
			if callee := analysis.FuncFor(pass.TypesInfo, n); callee != nil {
				if next, ok := funcs[callee]; ok {
					collectReferences(pass, funcs, next, referenced, seen)
				}
			}
		}
		return true
	})
}

// parameterObjects returns the receiver and parameter objects of decl: any
// of them may alias the codec'd value when helpers take it as an argument.
func parameterObjects(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	roots := make(map[types.Object]bool)
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					roots[obj] = true
				}
			}
		}
	}
	add(decl.Recv)
	add(decl.Type.Params)
	return roots
}

// indexFuncs maps every function/method object declared in the package to
// its declaration, for call-graph chasing.
func indexFuncs(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// mutableFields returns the receiver fields assigned (directly, through an
// element, or by address-taking) in any method of the type. RestoreState's
// own writes count too, but a field written there is by definition also
// referenced, so it never reports.
func mutableFields(pass *analysis.Pass, methods map[string]*ast.FuncDecl) map[string]bool {
	mutable := make(map[string]bool)
	for _, decl := range methods {
		if decl.Body == nil || decl.Recv == nil {
			continue
		}
		recv := receiverObject(pass, decl)
		if recv == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if f := rootField(pass, recv, lhs); f != "" {
						mutable[f] = true
					}
				}
			case *ast.IncDecStmt:
				if f := rootField(pass, recv, n.X); f != "" {
					mutable[f] = true
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if f := rootField(pass, recv, n.X); f != "" {
						mutable[f] = true
					}
				}
			case *ast.CallExpr:
				// copy(p.f, ...) and append-into mutate through the slice.
				if analysis.IsBuiltin(pass.TypesInfo, n, "copy") && len(n.Args) > 0 {
					if f := rootField(pass, recv, n.Args[0]); f != "" {
						mutable[f] = true
					}
				}
			}
			return true
		})
	}
	return mutable
}

func receiverObject(pass *analysis.Pass, decl *ast.FuncDecl) types.Object {
	names := decl.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}

// rootField walks expr down through selectors, indexes and slices to the
// receiver and returns the first field selected off it: p.entries[i].pc
// roots at field "entries".
func rootField(pass *analysis.Pass, recv types.Object, expr ast.Expr) string {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				return e.Sel.Name
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return ""
		}
	}
}

// exemptType reports types that cannot meaningfully serialize: functions
// and channels are wiring, not state.
func exemptType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return true
	}
	return false
}
