// Package analysistest runs a bovet analyzer over fixture packages and
// checks its findings against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library only.
//
// Fixtures live under a testdata directory that is its own Go module named
// bopsim, so fixture import paths land in the same bopsim/internal/...
// namespace the package classifier (config.go) keys on, while the repo's
// real build never sees them (testdata is invisible to ./... patterns and
// the nested go.mod fences it off). Expected findings are trailing comments
// of the form
//
//	code() // want "regexp"
//	twoFindings() // want "first" "second"
//
// where each quoted (or backquoted) Go string literal is a regular
// expression that must match a finding reported on that line. Lines without
// a want comment must produce no findings. Because fixtures run through the
// same analysis.Run pipeline as cmd/bovet, //bovet:allow directives in
// fixtures are honored — a fixture line carrying an allow directive and no
// want comment asserts that suppression works.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bopsim/internal/analysis"
)

// Run loads the nested fixture module rooted at testdata, applies the
// analyzer to the packages matched by patterns (default ./...), and reports
// every mismatch between findings and want comments as a test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	RunSuite(t, testdata, []*analysis.Analyzer{a}, nil, patterns...)
}

// RunSuite is Run for a whole analyzer suite sharing one pass over the
// fixtures — what deadallow needs (it judges the other analyzers' allow
// ledger) and what any cross-analyzer interaction test needs. known, when
// non-nil, is the set of analyzer names //bovet:allow directives may cite
// without being flagged as unknown; it lets a fixture carry a directive for
// an analyzer that is deliberately not active this run.
func RunSuite(t *testing.T, testdata string, suite, known []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("resolving %s: %v", testdata, err)
	}
	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, dir, patterns)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s match %v", dir, patterns)
	}
	runner := &analysis.Runner{Suite: suite, Known: known}
	findings, err := runner.Run(pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}

	wants := collectWants(t, fset, pkgs)
	for _, f := range findings {
		if !wants.match(f.Posn.Filename, f.Posn.Line, f.Message) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants.all {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched `// want %q`", w.file, w.line, w.re)
		}
	}
}

// want is one expectation: a regexp that must match a finding on its line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	all []*want
}

// match consumes the first unmatched expectation on file:line whose regexp
// matches the message.
func (ws *wantSet) match(file string, line int, message string) bool {
	for _, w := range ws.all {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans every fixture file's comments for want expectations.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					// The marker may open the comment or trail other text:
					// a //bovet:allow directive occupies its whole line, so
					// a deadallow fixture embeds the expectation for the
					// finding reported *on the directive itself* after the
					// directive's reason.
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					text := c.Text[idx+len("// want "):]
					posn := fset.Position(c.Pos())
					for _, lit := range stringLiterals(text) {
						pattern, err := strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: malformed want literal %s: %v", posn, lit, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", posn, pattern, err)
						}
						ws.all = append(ws.all, &want{file: posn.Filename, line: posn.Line, re: re})
					}
				}
			}
		}
	}
	return ws
}

// stringLiterals splits a want payload into its Go string literals
// (double-quoted with escapes, or backquoted).
func stringLiterals(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		case '`':
			if j := strings.IndexByte(s[i+1:], '`'); j >= 0 {
				out = append(out, s[i:i+j+2])
				i += j + 1
			}
		}
	}
	return out
}
