// Package sigcomplete closes the two identity loopholes a new
// engine.Options field can open.
//
// Every run's identity is derived from Options twice: the experiments
// result cache keys runs by OptionsHash — a SHA-256 over the JSON encoding
// of the whole normalized Options — and warmup checkpoints are shared
// between runs whose WarmupSignature matches. Both derivations are only
// sound if they see every outcome-affecting field. A field that is
// unexported or tagged `json:"-"` is invisible to OptionsHash: two runs
// differing only in it get the same cache key, and the second silently
// returns the first's result. A field that WarmupSignature never reads
// lets two differently-warmed runs share one checkpoint. Neither failure
// is loud — the simulation runs fine, the numbers are just subtly wrong —
// which is exactly the kind of invariant that belongs to a build-failing
// analyzer rather than code review.
//
// Checks, in the engine package:
//
//   - every Options field must be JSON-visible (exported, not `json:"-"`);
//   - every Options field must be read in the WarmupSignature method body
//     (directly off the receiver — reads hidden inside Normalized don't
//     count, since Normalized touching a field does not put it in the
//     signature). Post-barrier knobs that genuinely do not shape warmup
//     state (Instructions, MaxCycles) carry //bovet:allow sigcomplete with
//     the justification on their declaration line.
//
// And in the experiments package, via the HashSurface fact exported from
// engine: OptionsHash must marshal a value that embeds the whole
// engine.Options. Hashing a hand-copied projection would reintroduce the
// loophole one field at a time, so the projection itself is the finding.
package sigcomplete

import (
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"bopsim/internal/analysis"
)

// Analyzer is the sigcomplete pass.
var Analyzer = &analysis.Analyzer{
	Name:      "sigcomplete",
	Doc:       "every outcome-affecting engine.Options field must reach OptionsHash (JSON-visible) and WarmupSignature (read, or justified as post-barrier)",
	Run:       run,
	FactTypes: []analysis.Fact{(*HashSurface)(nil)},
}

// HashSurface is exported by the engine package: the JSON-visible field
// names of Options, i.e. what OptionsHash can possibly see. The
// experiments-side check uses its presence (and size, in messages) when
// verifying that OptionsHash hashes the whole struct.
type HashSurface struct {
	Fields []string
}

// AFact marks HashSurface as a fact type.
func (*HashSurface) AFact() {}

const (
	enginePath      = "bopsim/internal/engine"
	experimentsPath = "bopsim/internal/experiments"
)

func run(pass *analysis.Pass) error {
	switch pass.Pkg.Path() {
	case enginePath:
		checkEngine(pass)
	case experimentsPath:
		checkExperiments(pass)
	}
	return nil
}

// checkEngine validates the Options struct itself and its WarmupSignature
// coverage, and exports the hash surface for the experiments-side check.
func checkEngine(pass *analysis.Pass) {
	spec := findTypeSpec(pass, "Options")
	if spec == nil {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}

	read := warmupSignatureReads(pass)
	var surface []string
	for _, field := range st.Fields.List {
		tag := fieldTag(field)
		jsonName, visible := jsonVisibility(tag)
		for _, name := range field.Names {
			if !name.IsExported() || !visible {
				if !pass.Allowed(name.Pos()) {
					pass.Reportf(name.Pos(), "Options.%s is invisible to experiments.OptionsHash (%s); two runs differing in it would share a cache key and the second would silently return the first's result",
						name.Name, invisibleWhy(name, visible))
				}
				continue
			}
			if jsonName != "" {
				surface = append(surface, jsonName)
			} else {
				surface = append(surface, name.Name)
			}
			if read != nil && !read[name.Name] && !pass.Allowed(name.Pos()) {
				pass.Reportf(name.Pos(), "Options.%s is never read in WarmupSignature; two runs differing in it would share a warmup checkpoint — read it there, or annotate the field //bovet:allow sigcomplete with why it cannot shape pre-barrier state",
					name.Name)
			}
		}
	}
	sort.Strings(surface)
	pass.ExportPackageFact(&HashSurface{Fields: surface})
}

func invisibleWhy(name *ast.Ident, visible bool) string {
	if !name.IsExported() {
		return "unexported"
	}
	if !visible {
		return `tagged json:"-"`
	}
	return "hidden"
}

// warmupSignatureReads returns the Options fields selected directly off the
// WarmupSignature receiver, or nil when the method does not exist (then
// only the visibility check applies — the fixture and early-bootstrap
// case).
func warmupSignatureReads(pass *analysis.Pass) map[string]bool {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "WarmupSignature" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) != 1 {
				return map[string]bool{}
			}
			recv := pass.TypesInfo.Defs[names[0]]
			read := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
					read[sel.Sel.Name] = true
				}
				return true
			})
			return read
		}
	}
	return nil
}

// checkExperiments verifies OptionsHash marshals the whole engine.Options.
func checkExperiments(pass *analysis.Pass) {
	var surface HashSurface
	hasSurface := pass.ImportPackageFact(enginePath, &surface)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "OptionsHash" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if marshalsWholeOptions(pass, fd) {
				return
			}
			n := ""
			if hasSurface {
				n = " all " + itoa(len(surface.Fields)) + " JSON-visible fields of"
			}
			pass.Reportf(fd.Name.Pos(), "OptionsHash must marshal a value embedding the whole engine.Options so%s the options surface reach the cache key; hashing a projection drops outcome-affecting fields silently", n)
			return
		}
	}
}

// marshalsWholeOptions reports whether some json.Marshal call in the
// function hashes a value that is, or structurally contains, engine.Options.
func marshalsWholeOptions(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := analysis.FuncFor(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" || !strings.HasPrefix(fn.Name(), "Marshal") {
			return true
		}
		for _, arg := range call.Args {
			if containsOptions(pass.TypesInfo.TypeOf(arg), 0) {
				found = true
			}
		}
		return true
	})
	return found
}

// containsOptions walks struct fields (through pointers) looking for the
// engine.Options type.
func containsOptions(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		return containsOptions(p.Elem(), depth)
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == enginePath && obj.Name() == "Options" {
			return true
		}
		t = named.Underlying()
	}
	st, ok := t.(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if containsOptions(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}

func findTypeSpec(pass *analysis.Pass, name string) *ast.TypeSpec {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts
				}
			}
		}
	}
	return nil
}

func fieldTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	// The literal includes its backquotes; Unquote via reflect.StructTag
	// after trimming.
	return strings.Trim(field.Tag.Value, "`")
}

// jsonVisibility interprets a struct tag the way encoding/json does:
// returns the effective name ("" = field name) and whether the field is
// encoded at all.
func jsonVisibility(tag string) (name string, visible bool) {
	jt, ok := reflect.StructTag(tag).Lookup("json")
	if !ok {
		return "", true
	}
	base, _, _ := strings.Cut(jt, ",")
	if base == "-" && jt == "-" {
		return "", false
	}
	return base, true
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
