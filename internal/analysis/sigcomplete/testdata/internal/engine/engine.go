// Package engine is the violation half of the sigcomplete fixture: one
// Options field per way of dodging the cache key or the warmup signature.
package engine

// Options mirrors the real engine.Options shape; WarmupSignature below
// reads only Seed.
type Options struct {
	Seed    uint64
	hidden  int    // want `Options.hidden is invisible to experiments.OptionsHash \(unexported\)`
	Skipped bool   `json:"-"` // want `Options.Skipped is invisible to experiments.OptionsHash`
	Missing uint64 // want `Options.Missing is never read in WarmupSignature`
	//bovet:allow sigcomplete fixture: proves a justified post-barrier knob is not a finding
	Excused uint64
}

// WarmupSignature reads Seed directly off the receiver and nothing else.
func (o Options) WarmupSignature() uint64 { return o.Seed + uint64(o.hidden) }
