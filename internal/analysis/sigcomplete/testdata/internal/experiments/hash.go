// Package experiments hashes a hand-copied projection of Options — the
// loophole sigcomplete exists to close. The field count in the finding
// comes from the HashSurface fact the engine package exported.
package experiments

import (
	"encoding/json"

	"bopsim/internal/engine"
)

// OptionsHash drops every field but Seed from the cache key.
func OptionsHash(o engine.Options) []byte { // want `OptionsHash must marshal a value embedding the whole engine.Options so all 3 JSON-visible fields`
	b, _ := json.Marshal(struct{ Seed uint64 }{o.Seed})
	return b
}
