// Package experiments hashes a value embedding the whole engine.Options —
// the sanctioned shape; nothing is reported.
package experiments

import (
	"encoding/json"

	"bopsim/internal/engine"
)

// keyed is the version-plus-options envelope the real cache key uses.
type keyed struct {
	Version int
	Options engine.Options
}

// OptionsHash feeds the entire Options through the marshal.
func OptionsHash(o engine.Options) []byte {
	b, _ := json.Marshal(keyed{Version: 1, Options: o})
	return b
}
