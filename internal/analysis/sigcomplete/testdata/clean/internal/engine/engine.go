// Package engine is the clean half of the sigcomplete fixture: every field
// is JSON-visible and read in WarmupSignature, so nothing is reported.
package engine

// Options has a renamed-but-visible field and a plain one.
type Options struct {
	Seed  uint64
	Width int `json:"width"`
}

// WarmupSignature reads every field off the receiver.
func (o Options) WarmupSignature() uint64 { return o.Seed + uint64(o.Width) }
