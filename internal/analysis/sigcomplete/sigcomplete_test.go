package sigcomplete_test

import (
	"testing"

	"bopsim/internal/analysis/analysistest"
	"bopsim/internal/analysis/sigcomplete"
)

func TestSigcomplete(t *testing.T) {
	analysistest.Run(t, "testdata", sigcomplete.Analyzer)
}

// TestSigcompleteClean runs the analyzer over a fixture tree with no
// violations: a complete WarmupSignature and an OptionsHash that marshals
// the whole Options produce zero findings.
func TestSigcompleteClean(t *testing.T) {
	analysistest.Run(t, "testdata/clean", sigcomplete.Analyzer)
}
