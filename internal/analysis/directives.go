package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// bovet's annotation grammar lives in line comments:
//
//	//bovet:hotpath
//	    On a function declaration's doc comment: marks the function a
//	    hot-loop root for the hotalloc analyzer. Everything statically
//	    reachable from it inside the same package must be allocation-free.
//
//	//bovet:allow <analyzer>[,<analyzer>] <reason>
//	    On (or on the line directly above) an offending line: suppresses the
//	    named analyzers' diagnostics for that line. The reason is mandatory —
//	    an allow is a reviewed, justified exception, not a mute button — and
//	    a malformed or unknown-analyzer directive is itself reported, so a
//	    typo cannot silently fail to suppress.
//
// Like go:build and go:generate, the directives use the no-space
// comment form ("//bovet:...") so gofmt leaves them alone.

const (
	allowPrefix   = "//bovet:allow"
	hotpathMarker = "//bovet:hotpath"
	anyPrefix     = "//bovet:"
)

// HasHotpathDirective reports whether the function declaration is annotated
// as a hot-loop root.
func HasHotpathDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// allowSet records which analyzers are suppressed on which lines.
type allowSet map[fileLine]map[string]bool

type fileLine struct {
	file string
	line int
}

// suppresses reports whether an allow directive for the analyzer covers the
// diagnostic position: same line, or the line directly above (a standalone
// directive comment).
func (s allowSet) suppresses(analyzer string, posn token.Position) bool {
	if s[fileLine{posn.Filename, posn.Line}][analyzer] {
		return true
	}
	return s[fileLine{posn.Filename, posn.Line - 1}][analyzer]
}

// parseAllows extracts every //bovet: directive from the files. Malformed
// directives — unknown verb, unknown analyzer name, missing reason — come
// back as findings under the pseudo-analyzer "bovet"; those are never
// suppressible.
func parseAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (allowSet, []Finding) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := make(allowSet)
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Analyzer: "bovet", Posn: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case c.Text == hotpathMarker, strings.HasPrefix(c.Text, hotpathMarker+" "):
					// Validated where it is consumed (hotalloc); nothing to
					// record here.
				case strings.HasPrefix(c.Text, allowPrefix):
					parseAllow(fset, c, known, allows, report)
				case strings.HasPrefix(c.Text, anyPrefix):
					report(c.Pos(), "unknown bovet directive "+firstWord(c.Text)+" (known: allow, hotpath)")
				}
			}
		}
	}
	return allows, bad
}

func parseAllow(fset *token.FileSet, c *ast.Comment, known map[string]bool, allows allowSet, report func(token.Pos, string)) {
	rest := strings.TrimPrefix(c.Text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		report(c.Pos(), "unknown bovet directive "+firstWord(c.Text)+" (known: allow, hotpath)")
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		report(c.Pos(), "bovet:allow needs an analyzer name and a justifying reason: //bovet:allow <analyzer> <reason>")
		return
	}
	names := strings.Split(fields[0], ",")
	for _, name := range names {
		if !known[name] {
			report(c.Pos(), "bovet:allow names unknown analyzer "+name)
			return
		}
	}
	if len(fields) < 2 {
		report(c.Pos(), "bovet:allow "+fields[0]+" has no justifying reason; an exception must say why it is sound")
		return
	}
	posn := fset.Position(c.Pos())
	key := fileLine{posn.Filename, posn.Line}
	if allows[key] == nil {
		allows[key] = make(map[string]bool)
	}
	for _, name := range names {
		allows[key][name] = true
	}
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}
