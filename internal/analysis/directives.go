package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// bovet's annotation grammar lives in line comments:
//
//	//bovet:hotpath
//	    On a function declaration's doc comment: marks the function a
//	    hot-loop root for the hotalloc analyzer. Everything statically
//	    reachable from it — same-package calls followed directly,
//	    cross-package calls through their Allocates facts — must be
//	    allocation-free.
//
//	//bovet:schemalock
//	    On a struct type declaration's doc comment: locks the struct's
//	    serialized field-set into schema.lock for the schemalock analyzer,
//	    in addition to the codec payload structs it discovers on its own.
//
//	//bovet:allow <analyzer>[,<analyzer>] <reason>
//	    On (or on the line directly above) an offending line: suppresses the
//	    named analyzers' diagnostics for that line. The reason is mandatory —
//	    an allow is a reviewed, justified exception, not a mute button — and
//	    a malformed or unknown-analyzer directive is itself reported, so a
//	    typo cannot silently fail to suppress. A directive that suppresses
//	    nothing is reported by the deadallow analyzer, so the allow
//	    inventory cannot rot.
//
// Like go:build and go:generate, the directives use the no-space
// comment form ("//bovet:...") so gofmt leaves them alone.

const (
	allowPrefix      = "//bovet:allow"
	hotpathMarker    = "//bovet:hotpath"
	schemalockMarker = "//bovet:schemalock"
	anyPrefix        = "//bovet:"
)

// HasHotpathDirective reports whether the function declaration is annotated
// as a hot-loop root.
func HasHotpathDirective(decl *ast.FuncDecl) bool {
	return docHasMarker(decl.Doc, hotpathMarker)
}

// HasSchemalockDirective reports whether the doc comment group carries the
// schema-lock marker (on a GenDecl or TypeSpec doc).
func HasSchemalockDirective(doc *ast.CommentGroup) bool {
	return docHasMarker(doc, schemalockMarker)
}

func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// allowEntry is one parsed //bovet:allow directive.
type allowEntry struct {
	pos      token.Pos
	names    []string
	spelling string // the analyzer list as written, for messages
	used     bool   // suppressed at least one diagnostic or Allowed query
}

type fileLine struct {
	file string
	line int
}

// allowSet records which analyzers are suppressed on which lines and
// tracks which directives earned their keep.
type allowSet struct {
	byLine  map[fileLine][]*allowEntry
	entries []*allowEntry // file order, for deterministic deadallow output
}

// suppresses reports whether an allow directive for the analyzer covers the
// diagnostic position — same line, or the line directly above (a standalone
// directive comment) — and marks the covering directive used.
func (s *allowSet) suppresses(analyzer string, posn token.Position) bool {
	if s == nil {
		return false
	}
	for _, key := range []fileLine{{posn.Filename, posn.Line}, {posn.Filename, posn.Line - 1}} {
		for _, e := range s.byLine[key] {
			for _, name := range e.names {
				if name == analyzer {
					e.used = true
					return true
				}
			}
		}
	}
	return false
}

// parseAllows extracts every //bovet: directive from the files. Malformed
// directives — unknown verb, unknown analyzer name, missing reason — come
// back as findings under the pseudo-analyzer "bovet"; those are never
// suppressible.
func parseAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (*allowSet, []Finding) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := &allowSet{byLine: make(map[fileLine][]*allowEntry)}
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Analyzer: "bovet", Posn: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case c.Text == hotpathMarker, strings.HasPrefix(c.Text, hotpathMarker+" "):
					// Validated where it is consumed (hotalloc); nothing to
					// record here.
				case c.Text == schemalockMarker, strings.HasPrefix(c.Text, schemalockMarker+" "):
					// Consumed by schemalock via HasSchemalockDirective.
				case strings.HasPrefix(c.Text, allowPrefix):
					parseAllow(fset, c, known, allows, report)
				case strings.HasPrefix(c.Text, anyPrefix):
					report(c.Pos(), "unknown bovet directive "+firstWord(c.Text)+" (known: allow, hotpath, schemalock)")
				}
			}
		}
	}
	return allows, bad
}

func parseAllow(fset *token.FileSet, c *ast.Comment, known map[string]bool, allows *allowSet, report func(token.Pos, string)) {
	rest := strings.TrimPrefix(c.Text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		report(c.Pos(), "unknown bovet directive "+firstWord(c.Text)+" (known: allow, hotpath, schemalock)")
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		report(c.Pos(), "bovet:allow needs an analyzer name and a justifying reason: //bovet:allow <analyzer> <reason>")
		return
	}
	names := strings.Split(fields[0], ",")
	for _, name := range names {
		if !known[name] {
			report(c.Pos(), "bovet:allow names unknown analyzer "+name)
			return
		}
	}
	if len(fields) < 2 {
		report(c.Pos(), "bovet:allow "+fields[0]+" has no justifying reason; an exception must say why it is sound")
		return
	}
	posn := fset.Position(c.Pos())
	entry := &allowEntry{pos: c.Pos(), names: names, spelling: fields[0]}
	key := fileLine{posn.Filename, posn.Line}
	allows.byLine[key] = append(allows.byLine[key], entry)
	allows.entries = append(allows.entries, entry)
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}
