package analysis

import "strings"

// Package classification. The nondeterm analyzer applies only to
// result-affecting packages: the ones whose code can influence simulation
// output bytes. Infrastructure — the experiment scheduler's progress
// display, the distrib wire, profiling, the CLIs, and this analysis suite
// itself — may freely consult clocks and the environment; what it must never
// do is leak that into a Result, and that boundary is exactly the package
// boundary listed here.
//
// A new internal package is infra only if it appears in infraPackages;
// everything else under bopsim/internal/ defaults to result-affecting, so
// forgetting to classify a new simulator package fails closed (the analyzer
// runs on it) rather than open.
var infraPackages = map[string]bool{
	"experiments": true, // scheduler/status: progress rates use wall clocks
	"distrib":     true, // HTTP transport, retry timing
	"profiling":   true, // pprof plumbing
	"plot":        true, // table rendering, not part of Result bytes
	"analysis":    true, // this suite
	// fleet is coordinator infrastructure — journal I/O, probe timers,
	// HTTP serving. It never computes results itself: sweeps render
	// through experiments.RenderTarget against the deterministic engine,
	// so wall-clock use here cannot reach Result bytes. Deliberate
	// classification, revisit if fleet ever grows result math.
	"fleet": true,
}

const modulePrefix = "bopsim/"

// ResultAffecting reports whether pkgPath participates in simulation
// results. cmd/* and anything outside the module are infra; internal
// packages are result-affecting unless explicitly listed as infra.
func ResultAffecting(pkgPath string) bool {
	rest, ok := strings.CutPrefix(pkgPath, modulePrefix+"internal/")
	if !ok {
		return false
	}
	top, _, _ := strings.Cut(rest, "/")
	return !infraPackages[top]
}

// InternalPackage reports whether pkgPath is one of this module's internal
// packages — the only place registryinit permits registry mutation.
func InternalPackage(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, modulePrefix+"internal/")
}

// Registry functions whose call sites registryinit polices, keyed by
// defining package path, then function name.
var RegistryFuncs = map[string]map[string]bool{
	modulePrefix + "internal/prefetch": {"RegisterL1": true, "RegisterL2": true},
	modulePrefix + "internal/trace":    {"Register": true},
}
