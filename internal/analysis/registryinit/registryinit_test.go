package registryinit_test

import (
	"testing"

	"bopsim/internal/analysis/analysistest"
	"bopsim/internal/analysis/registryinit"
)

func TestRegistryinit(t *testing.T) {
	analysistest.Run(t, "testdata", registryinit.Analyzer)
}
