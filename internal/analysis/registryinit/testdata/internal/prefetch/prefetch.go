// Package prefetch is a stub of the real registry API. registryinit matches
// registration calls by import path and function name and checks Definition
// fields by name, so only the shape matters here — the nested fixture
// module is named bopsim precisely so this package's import path collides
// with the real one.
package prefetch

// Values mirrors the real parameter map.
type Values map[string]string

// Definition mirrors the fields the analyzer requires.
type Definition struct {
	Defaults map[string]string
	Build    func(Values) (any, error)
	Validate func(Values) error
	Help     string
}

// RegisterL2 registers an L2 prefetcher definition.
func RegisterL2(name string, def Definition) {}

// RegisterL1 registers an L1 prefetcher definition.
func RegisterL1(name string, def Definition) {}
