// Package core exercises the registryinit rules from an internal package:
// init-time registration with complete definitions passes, everything else
// is a finding.
package core

import (
	"bopsim/internal/prefetch"
	"bopsim/internal/trace"
)

func init() {
	prefetch.RegisterL2("good", prefetch.Definition{
		Defaults: map[string]string{},
		Build:    build,
		Validate: validate,
	})
	trace.Register("goodgen", trace.Definition{
		Defaults: map[string]string{"n": "1"},
		Build:    buildGen,
		Validate: validateGen,
	})
	registerMore()

	prefetch.RegisterL2("incomplete", prefetch.Definition{ // want `definition missing Defaults` `definition missing Validate`
		Build: build,
	})
	prefetch.RegisterL1("nilhook", prefetch.Definition{
		Defaults: map[string]string{},
		Build:    build,
		Validate: nil, // want `definition sets Validate to nil`
	})

	// A definition built in a single local assignment is still checkable.
	def := prefetch.Definition{
		Defaults: map[string]string{},
		Build:    build,
		Validate: validate,
	}
	prefetch.RegisterL2("local", def)
}

// registerMore is unexported and called only from init, so the init-only
// fixpoint accepts registrations inside it (the registerMix idiom).
func registerMore() {
	prefetch.RegisterL2("helper", prefetch.Definition{
		Defaults: map[string]string{},
		Build:    build,
		Validate: validate,
	})
}

// RegisterLate is exported: it could run while the engine is already
// simulating, so registration inside it is rejected.
func RegisterLate() {
	prefetch.RegisterL2("late", prefetch.Definition{ // want `called outside func init\(\)`
		Defaults: map[string]string{},
		Build:    build,
		Validate: validate,
	})
}

// RegisterFrom takes the definition as a parameter, so its completeness
// cannot be checked at the call site.
func RegisterFrom(def prefetch.Definition) {
	prefetch.RegisterL2("param", def) // want `called outside func init\(\)` `definition is not a composite literal`
}

func build(prefetch.Values) (any, error) { return nil, nil }
func validate(prefetch.Values) error     { return nil }

func buildGen(map[string]string) (any, error) { return nil, nil }
func validateGen(map[string]string) error     { return nil }
