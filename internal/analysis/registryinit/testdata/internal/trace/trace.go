// Package trace is a stub of the real workload registry API (see the
// prefetch stub for why a stub suffices).
package trace

// Definition mirrors the fields the analyzer requires.
type Definition struct {
	Defaults map[string]string
	Build    func(map[string]string) (any, error)
	Validate func(map[string]string) error
}

// Register registers a workload generator definition.
func Register(name string, def Definition) {}
