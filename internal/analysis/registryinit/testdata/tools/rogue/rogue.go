// Package rogue registers from outside bopsim/internal: the registries are
// reserved to the curated internal packages, even at init time.
package rogue

import "bopsim/internal/prefetch"

func init() {
	prefetch.RegisterL2("rogue", prefetch.Definition{ // want `registration is reserved to bopsim/internal packages`
		Defaults: map[string]string{},
		Build:    func(prefetch.Values) (any, error) { return nil, nil },
		Validate: func(prefetch.Values) error { return nil },
	})
}
