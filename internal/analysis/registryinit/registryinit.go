// Package registryinit polices the two plug-in registries (prefetchers and
// workload generators): registration is an init-time programming action
// performed by internal packages, never a runtime behavior — and every
// registered Definition must be complete enough for the registry's
// contracts to hold.
//
// Rules:
//
//  1. prefetch.RegisterL1/RegisterL2 and trace.Register may be called only
//     at init time: from the body of a func init(), or from an unexported
//     function/method reachable exclusively from init (the registration-
//     helper idiom — registerMix(), a benchDef.register() loop). Anywhere
//     else, a duplicate-name panic would take down a running sweep instead
//     of failing at program start. A helper whose address escapes as a
//     value, or that is also called from runtime code, does not qualify.
//  2. Only packages under bopsim/internal/ may register: registration from
//     cmd/* or an external module would bypass the blank-import bundles
//     (internal/prefetch/all) that define which implementations exist.
//  3. The Definition literal must declare a non-nil Defaults (the parameter
//     schema Normalize validates against — nil means "no schema", which
//     silently rejects every parameter), a Build, and a non-nil Validate
//     hook (so Normalize never has to construct the component to check a
//     spec).
//
// The Definition must be syntactically visible: a composite literal passed
// directly, or a local variable assigned one in the same init body.
package registryinit

import (
	"go/ast"
	"go/types"

	"bopsim/internal/analysis"
)

// Analyzer is the registryinit pass.
var Analyzer = &analysis.Analyzer{
	Name: "registryinit",
	Doc:  "registry Register calls only from init in internal packages, with complete Definitions",
	Run:  run,
}

// requiredFields must be present and non-nil in every registered
// Definition literal.
var requiredFields = []string{"Defaults", "Build", "Validate"}

func run(pass *analysis.Pass) error {
	initSafe := initOnlyFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, initSafe[fd])
		}
	}
	return nil
}

// initOnlyFuncs computes the package's init-time functions: init itself,
// plus every unexported function whose callers are all init-time and whose
// value never escapes (never referenced outside call position). Fixpoint
// over the intra-package call graph, starting pessimistic.
func initOnlyFuncs(pass *analysis.Pass) map[*ast.FuncDecl]bool {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var all []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			all = append(all, fd)
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	callers := make(map[*ast.FuncDecl]map[*ast.FuncDecl]bool) // callee -> callers
	escaped := make(map[*ast.FuncDecl]bool)                   // referenced as a value
	consumed := make(map[*ast.Ident]bool)                     // idents that are direct-call callees
	for _, caller := range all {
		ast.Inspect(caller.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.FuncFor(pass.TypesInfo, call); callee != nil {
				if fd, ok := decls[callee]; ok {
					if callers[fd] == nil {
						callers[fd] = make(map[*ast.FuncDecl]bool)
					}
					callers[fd][caller] = true
					if id := calleeIdent(call); id != nil {
						consumed[id] = true
					}
				}
			}
			return true
		})
	}
	for _, caller := range all {
		ast.Inspect(caller.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || consumed[id] {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				if fd, ok := decls[fn]; ok {
					escaped[fd] = true // func value used outside call position
				}
			}
			return true
		})
	}

	safe := make(map[*ast.FuncDecl]bool)
	for _, fd := range all {
		if fd.Recv == nil && fd.Name.Name == "init" {
			safe[fd] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range all {
			if safe[fd] || fd.Name.IsExported() || escaped[fd] || len(callers[fd]) == 0 {
				continue
			}
			ok := true
			for caller := range callers[fd] {
				if !safe[caller] {
					ok = false
					break
				}
			}
			if ok {
				safe[fd] = true
				changed = true
			}
		}
	}
	return safe
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, inInit bool) {
	depth := 0 // FuncLit nesting: a call inside a closure is not "in init"
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case *ast.CallExpr:
			if name, ok := registryCall(pass, n); ok {
				checkRegistration(pass, fd, n, name, inInit && depth == 0)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// registryCall reports whether the call targets one of the policed
// registration functions.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncFor(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if names, ok := analysis.RegistryFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
		return fn.Pkg().Name() + "." + fn.Name(), true
	}
	return "", false
}

func checkRegistration(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, name string, inInit bool) {
	if !analysis.InternalPackage(pass.Pkg.Path()) {
		pass.Reportf(call.Pos(), "%s called from %s: registration is reserved to bopsim/internal packages (see internal/prefetch/all)", name, pass.Pkg.Path())
	}
	if !inInit {
		pass.Reportf(call.Pos(), "%s called outside func init(): registration must be an init-time action so duplicate names fail at program start", name)
	}
	if len(call.Args) < 2 {
		return
	}
	lit := definitionLiteral(pass, fd, call.Args[1])
	if lit == nil {
		pass.Reportf(call.Args[1].Pos(), "%s: definition is not a composite literal visible in this init; declare it inline so its completeness can be checked", name)
		return
	}
	fields := make(map[string]ast.Expr, len(lit.Elts))
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			fields[key.Name] = kv.Value
		}
	}
	for _, want := range requiredFields {
		value, ok := fields[want]
		if !ok {
			pass.Reportf(lit.Pos(), "%s: definition missing %s %s", name, want, fieldWhy(want))
			continue
		}
		if id, ok := ast.Unparen(value).(*ast.Ident); ok && id.Name == "nil" {
			pass.Reportf(value.Pos(), "%s: definition sets %s to nil %s", name, want, fieldWhy(want))
		}
	}
}

func fieldWhy(field string) string {
	switch field {
	case "Defaults":
		return "(the parameter schema; use an empty map for \"accepts no parameters\")"
	case "Validate":
		return "(Normalize must be able to check a spec without constructing the component)"
	default:
		return "(the registry panics without it)"
	}
}

// definitionLiteral resolves the definition argument to a composite
// literal: either directly, or through a single assignment to a local
// variable inside the same function.
func definitionLiteral(pass *analysis.Pass, fd *ast.FuncDecl, arg ast.Expr) *ast.CompositeLit {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.CompositeLit:
		return arg
	case *ast.UnaryExpr:
		if arg.Op.String() == "&" {
			if lit, ok := ast.Unparen(arg.X).(*ast.CompositeLit); ok {
				return lit
			}
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[arg]
		if obj == nil {
			return nil
		}
		var lit *ast.CompositeLit
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || i >= len(assign.Rhs) {
					continue
				}
				if def, isDef := pass.TypesInfo.Defs[id]; isDef && def == obj {
					if l, ok := ast.Unparen(assign.Rhs[i]).(*ast.CompositeLit); ok {
						lit = l
					}
				} else if pass.TypesInfo.Uses[id] == obj {
					lit = nil // reassigned after declaration: give up
				}
			}
			return true
		})
		return lit
	}
	return nil
}
