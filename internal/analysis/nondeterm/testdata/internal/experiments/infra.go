// Package experiments is allowlisted infrastructure (see config.go): status
// output and scheduling may consult ambient state freely, so none of these
// lines produce findings.
package experiments

import (
	"os"
	"time"
)

// Stamp is fine here: wall-clock time in progress output is not a result.
func Stamp() int64 { return time.Now().Unix() }

// Env is fine here: infra may read its own knobs from the environment.
func Env() string { return os.Getenv("BOPSIM_STATUS") }
