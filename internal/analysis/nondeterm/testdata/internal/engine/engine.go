// Package engine is a result-affecting fixture for the nondeterm analyzer:
// its import path puts it in the bopsim/internal namespace without naming an
// allowlisted infra package.
package engine

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

// Clock samples ambient state that is not a function of engine.Options.
func Clock() int64 {
	t := time.Now() // want `call to time.Now in result-affecting package`
	return t.Unix()
}

// Env reads the process environment.
func Env() string {
	return os.Getenv("BOPSIM_SEED") // want `call to os.Getenv in result-affecting package`
}

// GlobalRand mixes the banned global source with a sanctioned seeded one.
func GlobalRand(r *rand.Rand) int {
	if r.Intn(2) == 0 { // method on a seeded *rand.Rand: allowed
		return rand.Intn(10) // want `uses the global random source`
	}
	return r.Intn(10)
}

// Print feeds map iteration order straight into a formatted sink.
func Print(m map[string]int, sb *strings.Builder) {
	for k, v := range m { // want `map iteration feeds fmt.Fprintf`
		fmt.Fprintf(sb, "%s=%d\n", k, v)
	}
}

// Unsorted collects keys in map order and never sorts them.
func Unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to keys in map-iteration order`
	}
	return keys
}

// Sorted is the sanctioned collect-sort-iterate pattern: the append is
// allowed because a sort call on the same slice follows the loop.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Accumulate sums floats in map order; float addition is not associative.
func Accumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `accumulating float sum in map-iteration order`
	}
	return sum
}

// SliceRange iterates a slice, whose order is deterministic: no finding.
func SliceRange(xs []float64, sb *strings.Builder) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
		fmt.Fprintf(sb, "%g\n", v)
	}
	return sum
}

// Allowed documents a justified exception with the mandatory reason.
func Allowed() int64 {
	//bovet:allow nondeterm fixture: proves a justified directive suppresses the diagnostic
	return time.Now().Unix()
}
