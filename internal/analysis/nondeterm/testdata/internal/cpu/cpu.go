// Package cpu is the importing half of the cross-package taint fixture: the
// nondeterminism it launders through trace.Reseed is invisible to any
// single-package analysis and reaches here only via the fact file.
package cpu

import "bopsim/internal/trace"

// Step calls a tainted function from another module package; the finding
// names the full call path back to the ambient source.
func Step() int64 {
	return trace.Reseed() // want `call to bopsim/internal/trace.Reseed in result-affecting package reaches time.Now`
}

// Clean calls an untainted import: no finding.
func Clean() int64 {
	return trace.Pure(7)
}

// Allowed documents a justified cross-package exception: the directive
// suppresses the imported-taint finding exactly like a local one.
func Allowed() int64 {
	//bovet:allow nondeterm fixture: proves imported taint can be excused with a reason
	return trace.Reseed()
}
