// Package trace is the dependency half of the cross-package taint fixture:
// Reseed is tainted here, and the importing cpu package sees that only
// through the Nondeterministic object fact exported from this package.
package trace

import "time"

// Reseed samples the wall clock, so it is flagged locally and exported as
// tainted for importers.
func Reseed() int64 {
	return time.Now().UnixNano() // want `call to time.Now in result-affecting package`
}

// Pure is exported and clean: importers calling it get no finding.
func Pure(x int64) int64 { return x * 3 }
