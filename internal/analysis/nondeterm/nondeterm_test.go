package nondeterm_test

import (
	"testing"

	"bopsim/internal/analysis/analysistest"
	"bopsim/internal/analysis/nondeterm"
)

func TestNondeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterm.Analyzer)
}
