// Package nondeterm flags nondeterminism entering result-affecting code:
// wall clocks, global randomness, the environment, and map iteration whose
// order can reach an output, hash, or serialization sink.
//
// Everything this repo publishes — Table 1 bytes identical across
// serial/parallel/distributed/checkpointed execution — depends on result
// paths being pure functions of engine.Options. The runtime golden suites
// prove that after the fact; this analyzer refuses the classic ways of
// breaking it at compile time.
//
// The analyzer is interprocedural across the module: every package
// (infrastructure included) is scanned for functions that reach a banned
// call — directly, through same-package callees, or through a callee in an
// already-analyzed module package — and each such function carries a
// Nondeterministic fact. Infra packages may use clocks freely themselves,
// but the moment a result-affecting package calls one of their tainted
// helpers, the call site is a finding: the package boundary no longer
// launders ambient state into results.
package nondeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"bopsim/internal/analysis"
)

// Analyzer is the nondeterm pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "forbid wall clocks, global rand, env vars and unsorted map iteration " +
		"into sinks inside result-affecting packages, following calls across packages",
	Run:       run,
	FactTypes: []analysis.Fact{(*Nondeterministic)(nil)},
}

// Nondeterministic is exported on every function that reaches a banned
// ambient-state call, so importing packages see the taint at their call
// sites.
type Nondeterministic struct {
	// Path is the call chain from this function down to the ambient-state
	// read, innermost call last (e.g. ["bopsim/internal/fleet.stamp",
	// "time.Now"]). Capped; the root cause is always the last element.
	Path []string
}

// AFact marks Nondeterministic as a fact type.
func (*Nondeterministic) AFact() {}

// maxPathLen caps the reported chain; deep chains elide the middle.
const maxPathLen = 4

// bannedFuncs maps defining package path -> function name -> what to say.
// Methods are exempt (a *rand.Rand seeded from Options is deterministic);
// these are the package-level entry points that reach ambient state.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time is not a function of engine.Options",
		"Since": "wall-clock time is not a function of engine.Options",
		"Until": "wall-clock time is not a function of engine.Options",
	},
	"os": {
		"Getenv":    "the environment is not part of the simulated configuration",
		"LookupEnv": "the environment is not part of the simulated configuration",
		"Environ":   "the environment is not part of the simulated configuration",
	},
}

// globalRandPackages: every package-level function in these shares the
// global, cross-goroutine source; seeded per-run *rand.Rand values (or
// internal/rng) are the sanctioned alternative.
var globalRandPackages = map[string]bool{"math/rand": true, "math/rand/v2": true}

// taint records why one declared function is nondeterministic.
type taint struct {
	path []string // chain down to the ambient read, innermost last
}

func run(pass *analysis.Pass) error {
	reporting := analysis.ResultAffecting(pass.Pkg.Path())

	// Index this package's function declarations in file order, so the
	// taint fixpoint (and therefore fact contents and messages) is
	// deterministic.
	var decls []*ast.FuncDecl
	byFunc := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					byFunc[fn] = fd
				}
			}
		}
	}

	// Seed taint from direct banned calls and from cross-package callees
	// that carry the fact; record same-package call edges for propagation.
	taints := make(map[*ast.FuncDecl]*taint)
	callees := make(map[*ast.FuncDecl][]*ast.FuncDecl)
	for _, fd := range decls {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncFor(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if what, why := bannedCall(fn); what != "" {
				if reporting {
					pass.Reportf(call.Pos(), "call to %s in result-affecting package: %s", what, why)
				}
				if !pass.Allowed(call.Pos()) {
					addTaint(taints, fd, []string{what})
				}
				return true
			}
			if local, ok := byFunc[fn]; ok {
				callees[fd] = append(callees[fd], local)
				return true
			}
			if fn.Pkg() == pass.Pkg || !analysis.ModulePackage(fn.Pkg().Path()) {
				return true
			}
			var fact Nondeterministic
			if pass.ImportObjectFact(fn, &fact) {
				path := prepend(qualifiedName(fn), fact.Path)
				if reporting {
					pass.Reportf(call.Pos(), "call to %s in result-affecting package reaches %s (via %s)",
						qualifiedName(fn), root(path), strings.Join(path[:len(path)-1], " -> "))
				}
				if !pass.Allowed(call.Pos()) {
					addTaint(taints, fd, path)
				}
			}
			return true
		})
	}

	// Intra-package propagation to a fixpoint: a caller of a tainted
	// function is tainted. First assignment wins, and iteration is in
	// declaration order, so the chains are stable.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if taints[fd] != nil {
				continue
			}
			for _, callee := range callees[fd] {
				if t := taints[callee]; t != nil {
					addTaint(taints, fd, prepend(declName(pass, callee), t.path))
					changed = true
					break
				}
			}
		}
	}

	// Export facts so importing packages see the taint. Unexported
	// functions are included for uniformity; only objects visible through
	// export data can be referenced downstream anyway.
	for _, fd := range decls {
		t := taints[fd]
		if t == nil {
			continue
		}
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			pass.ExportObjectFact(fn, &Nondeterministic{Path: t.path})
		}
	}

	if reporting {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if rng, ok := n.(*ast.RangeStmt); ok {
					checkMapRange(pass, file, rng)
				}
				return true
			})
		}
	}
	return nil
}

// bannedCall classifies a direct call to an ambient-state entry point.
func bannedCall(fn *types.Func) (what, why string) {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // methods on locally seeded values are fine
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if why, ok := bannedFuncs[path][name]; ok {
		return path + "." + name, why
	}
	if globalRandPackages[path] {
		return path + "." + name, "uses the global random source; derive a seeded source from engine.Options instead"
	}
	return "", ""
}

func addTaint(taints map[*ast.FuncDecl]*taint, fd *ast.FuncDecl, path []string) {
	if taints[fd] == nil {
		taints[fd] = &taint{path: path}
	}
}

// prepend builds a chain with hop first, eliding the middle beyond
// maxPathLen while always preserving the root cause at the end.
func prepend(hop string, rest []string) []string {
	path := append([]string{hop}, rest...)
	if len(path) > maxPathLen {
		elided := append([]string{}, path[:maxPathLen-2]...)
		elided = append(elided, "...", path[len(path)-1])
		return elided
	}
	return path
}

func root(path []string) string { return path[len(path)-1] }

func qualifiedName(fn *types.Func) string {
	return fn.Pkg().Path() + "." + analysis.ObjectKey(fn)
}

func declName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return qualifiedName(fn)
	}
	return fd.Name.Name
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// feeds an order-sensitive sink — appends to an outer slice that is never
// sorted afterwards, formatted printing, Write-style calls, or float
// accumulation — because map iteration order would then reach bytes the
// golden tests promise are stable. The sanctioned pattern (collect keys,
// sort, iterate the slice) is recognized: the key-collecting append is
// allowed when a sort call on the same slice follows the loop.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	body := findEnclosingBody(file, rng)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sink := sinkCall(pass, n); sink != "" {
				pass.Reportf(rng.Pos(), "map iteration feeds %s; iterate sorted keys instead (see trace/registry.go)", sink)
				return true
			}
		case *ast.AssignStmt:
			checkRangeAssign(pass, body, rng, n)
		}
		return true
	})
}

func checkRangeAssign(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	obj := outerObject(pass, rng, assign.Lhs[0])
	if obj == nil {
		return
	}
	// x = append(x, ...) building a slice in map order.
	if call, ok := assign.Rhs[0].(*ast.CallExpr); ok && isAppend(pass, call) {
		if !sortedAfter(pass, body, rng, obj) {
			pass.Reportf(assign.Pos(), "appending to %s in map-iteration order without sorting it afterwards; sort before the bytes escape", obj.Name())
		}
		return
	}
	// x += v float accumulation: addition order changes the result.
	if assign.Tok.String() == "+=" || assign.Tok.String() == "-=" {
		if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
			pass.Reportf(assign.Pos(), "accumulating float %s in map-iteration order; float addition is not associative — iterate sorted keys", obj.Name())
		}
	}
}

// sinkCall classifies a call as an order-sensitive sink: formatted printing
// or a Write-family method (io.Writer, hash.Hash, bufio, strings.Builder).
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := funcFor(pass, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return "fmt." + fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return "a " + fn.Name() + " sink"
		}
	}
	return ""
}

// outerObject returns the object assigned through lhs when it was declared
// outside the range statement (so writes to it survive the loop).
func outerObject(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil || obj.Pos() == 0 {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // loop-local: dies with the iteration
	}
	return obj
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, after the range statement, the enclosing
// function body contains a sort/slices call naming obj — the second half of
// the sanctioned collect-sort-iterate pattern.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := funcFor(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// findEnclosingBody returns the body of the innermost function enclosing n.
func findEnclosingBody(file *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(cand ast.Node) bool {
		if cand == nil || cand.Pos() > n.Pos() || cand.End() < n.End() {
			return false
		}
		switch cand := cand.(type) {
		case *ast.FuncDecl:
			if cand.Body != nil {
				body = cand.Body
			}
		case *ast.FuncLit:
			body = cand.Body
		}
		return true
	})
	return body
}

func funcFor(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	return analysis.FuncFor(pass.TypesInfo, call)
}
